//! Memoized simulation matrix and the anchored performance model.

use std::collections::{HashMap, HashSet};

use pom_tlb::perf_model::improvement_pct;
use pom_tlb::{
    run_jobs, share_traces_with_store, Scheme, SimConfig, SimJob, SimReport, SystemConfig,
};
use pomtlb_tlb::WalkMode;
use pomtlb_trace::TraceStore;
use pomtlb_workloads::PaperWorkload;

/// Run-length preset for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpConfig {
    /// Per-core simulated references after warmup.
    pub refs_per_core: u64,
    /// Per-core warmup references.
    pub warmup_per_core: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ExpConfig {
    /// The default experiment length (≈0.5 s per run in release builds).
    pub fn standard() -> ExpConfig {
        ExpConfig { refs_per_core: 40_000, warmup_per_core: 15_000, seed: 0x90af }
    }

    /// A fast smoke-test length for CI and `--quick`.
    pub fn quick() -> ExpConfig {
        ExpConfig { refs_per_core: 8_000, warmup_per_core: 4_000, seed: 0x90af }
    }

    fn sim(&self) -> SimConfig {
        SimConfig {
            refs_per_core: self.refs_per_core,
            warmup_per_core: self.warmup_per_core,
            seed: self.seed,
        }
    }
}

/// Memoized `(workload, scheme, system-variant) → SimReport` runner.
///
/// The anchored performance model lives here too. The paper computes
/// Figure 8 improvements from *measured* baseline penalties (Table 2) and
/// *simulated* scheme penalties (§3.2–3.3); a pure software reproduction
/// has no hardware to measure, so each workload's baseline penalty is
/// anchored at
///
/// ```text
/// P_anchor = max(P_table2, P_sim_baseline)
/// ```
///
/// — the measured number is authoritative where the simulator is too
/// optimistic about walk microarchitecture, and the simulated number is
/// authoritative where our synthetic traces stress contention harder than
/// the original run did. Scheme penalties have their *residual walk*
/// cycles rescaled by `κ = P_anchor / P_sim_baseline` so a scheme's page
/// walks cost what the anchored baseline says walks cost (see
/// `SimReport::p_avg_calibrated`).
pub struct Matrix {
    cfg: ExpConfig,
    cache: HashMap<(String, String), SimReport>,
    /// In plan mode, `report_with` records the job it *would* run and
    /// returns a zeroed placeholder instead of simulating. Jobs are kept in
    /// first-request order (deduplicated), so `execute_plan` warms the
    /// cache deterministically.
    planning: bool,
    planned: Vec<((String, String), SimJob)>,
    planned_keys: HashSet<(String, String)>,
    /// When on, `execute_plan` records each distinct input stream once and
    /// replays it to every scheme sharing it (see [`pom_tlb::share_traces`]).
    trace_cache: bool,
    /// Persistent backing for the trace cache: recordings hit here replay
    /// from disk across invocations (see [`pom_tlb::share_traces_with_store`]).
    trace_store: Option<TraceStore>,
    /// Echo each run to stderr as it happens (the full matrix takes a
    /// couple of minutes; silence is unnerving).
    pub verbose: bool,
}

impl Matrix {
    /// Creates an empty matrix.
    pub fn new(cfg: ExpConfig) -> Matrix {
        Matrix {
            cfg,
            cache: HashMap::new(),
            planning: false,
            planned: Vec::new(),
            planned_keys: HashSet::new(),
            trace_cache: false,
            trace_store: None,
            verbose: true,
        }
    }

    /// Enables shared-trace execution for planned batches: the scheme ×
    /// variant jobs of one workload consume one recording of its reference
    /// stream instead of regenerating it per job. Replay is bit-identical,
    /// so cached reports — and every figure built from them — are unchanged.
    pub fn set_trace_cache(&mut self, on: bool) {
        self.trace_cache = on;
    }

    /// Backs the trace cache with a persistent store: planned batches
    /// replay recordings from disk when present (map-on-hit) and persist
    /// what they generate (record-on-miss), so a *second* invocation over
    /// the same matrix runs zero generator passes. Implies
    /// [`Matrix::set_trace_cache`]. Store defects degrade to live
    /// generation; output never changes.
    pub fn set_trace_store(&mut self, store: Option<TraceStore>) {
        if store.is_some() {
            self.trace_cache = true;
        }
        self.trace_store = store;
    }

    /// The persistent trace store, if one is attached.
    pub fn trace_store(&self) -> Option<&TraceStore> {
        self.trace_store.as_ref()
    }

    /// Switches plan mode on or off. While planning, `report_with` records
    /// jobs instead of running them and hands back placeholder reports
    /// ([`SimReport::placeholder`] — every rate is 0, never a panic), so a
    /// figure builder can be walked cheaply to discover its simulations.
    pub fn set_planning(&mut self, on: bool) {
        self.planning = on;
    }

    /// Runs every planned job on `n_workers` threads (see
    /// [`pom_tlb::run_jobs`]) and moves the reports into the cache, then
    /// leaves plan mode. Rebuilding the same figures afterwards replays
    /// entirely from the warm cache, so output is byte-identical to a
    /// serial run — each job owns its seed and the cache is keyed exactly
    /// like serial memoization.
    pub fn execute_plan(&mut self, n_workers: usize) {
        self.planning = false;
        let planned = std::mem::take(&mut self.planned);
        self.planned_keys.clear();
        if planned.is_empty() {
            return;
        }
        if self.verbose {
            eprintln!("  [plan] {} simulations on {} workers", planned.len(), n_workers);
        }
        let (keys, jobs): (Vec<_>, Vec<_>) = planned.into_iter().unzip();
        let mut jobs = jobs;
        if self.trace_cache {
            let outcome = share_traces_with_store(&mut jobs, self.trace_store.as_ref());
            if self.verbose {
                eprintln!(
                    "  [plan] {} shared trace recording(s) ({} replayed from disk, {} recorded)",
                    outcome.attached, outcome.store_hits, outcome.recorded
                );
            }
        }
        for (key, result) in keys.into_iter().zip(run_jobs(jobs, n_workers)) {
            self.cache.insert(key, result.report);
        }
    }

    /// The run-length configuration.
    pub fn config(&self) -> ExpConfig {
        self.cfg
    }

    /// Simulates (or recalls) `workload` under `scheme` on the default
    /// Table 1 system.
    pub fn report(&mut self, w: &PaperWorkload, scheme: Scheme) -> SimReport {
        self.report_with(w, scheme, "default", SystemConfig::default())
    }

    /// Simulates (or recalls) with an explicit system variant; `variant`
    /// names it for memoization (e.g. `"cap8MB"`, `"cores4"`, `"native"`).
    pub fn report_with(
        &mut self,
        w: &PaperWorkload,
        scheme: Scheme,
        variant: &str,
        sys: SystemConfig,
    ) -> SimReport {
        let key = (w.name.to_string(), format!("{scheme:?}/{variant}"));
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        let job = SimJob::new(format!("{}/{}/{variant}", w.name, scheme.label()), &w.spec, scheme, self.cfg.sim())
            .with_system_config(sys)
            .shared_memory(w.suite.shares_memory());
        if self.planning {
            if self.planned_keys.insert(key.clone()) {
                self.planned.push((key, job));
            }
            return SimReport::placeholder(scheme, w.name, 0);
        }
        if self.verbose {
            eprintln!("  [sim] {} / {} / {variant}", w.name, scheme.label());
        }
        let report = job.run();
        self.cache.insert(key, report.clone());
        report
    }

    /// The native-execution baseline (1-D walks), for Figure 3.
    pub fn native_baseline(&mut self, w: &PaperWorkload) -> SimReport {
        let sys = SystemConfig { walk_mode: WalkMode::Native, ..Default::default() };
        self.report_with(w, Scheme::Baseline, "native", sys)
    }

    /// The simulated virtualized baseline.
    pub fn baseline(&mut self, w: &PaperWorkload) -> SimReport {
        self.report(w, Scheme::Baseline)
    }

    /// The anchored baseline penalty (see type-level docs).
    pub fn p_anchor(&mut self, w: &PaperWorkload) -> f64 {
        let sim = self.baseline(w).p_avg();
        sim.max(w.table2.cycles_per_miss_virtual)
    }

    /// The walk re-pricing factor κ.
    pub fn kappa(&mut self, w: &PaperWorkload) -> f64 {
        let sim = self.baseline(w).p_avg();
        if sim <= 0.0 {
            1.0
        } else {
            self.p_anchor(w) / sim
        }
    }

    /// A scheme's calibrated per-miss penalty.
    pub fn p_scheme(&mut self, w: &PaperWorkload, scheme: Scheme) -> f64 {
        let kappa = self.kappa(w);
        self.report(w, scheme).p_avg_calibrated(kappa)
    }

    /// Figure 8's quantity: percentage performance improvement of `scheme`
    /// over the anchored baseline under the paper's additive model.
    pub fn improvement(&mut self, w: &PaperWorkload, scheme: Scheme) -> f64 {
        let anchor = self.p_anchor(w);
        let p = self.p_scheme(w, scheme);
        improvement_pct(w.table2.overhead_virtual_pct, anchor, p)
    }

    /// Like [`Matrix::improvement`] but for an explicit system variant.
    pub fn improvement_with(
        &mut self,
        w: &PaperWorkload,
        scheme: Scheme,
        variant: &str,
        sys: SystemConfig,
    ) -> f64 {
        let anchor = self.p_anchor(w);
        let kappa = self.kappa(w);
        let p = self.report_with(w, scheme, variant, sys).p_avg_calibrated(kappa);
        improvement_pct(w.table2.overhead_virtual_pct, anchor, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomtlb_workloads::by_name;

    fn tiny() -> ExpConfig {
        ExpConfig { refs_per_core: 2_000, warmup_per_core: 1_000, seed: 3 }
    }

    #[test]
    fn memoization_returns_identical_reports() {
        let mut m = Matrix::new(tiny());
        m.verbose = false;
        let w = by_name("streamcluster").unwrap();
        let a = m.report(&w, Scheme::pom_tlb());
        let b = m.report(&w, Scheme::pom_tlb());
        assert_eq!(a.l2_tlb_misses, b.l2_tlb_misses);
        assert_eq!(a.total_penalty, b.total_penalty);
    }

    #[test]
    fn anchor_is_at_least_table2() {
        let mut m = Matrix::new(tiny());
        m.verbose = false;
        let w = by_name("mcf").unwrap();
        assert!(m.p_anchor(&w) >= w.table2.cycles_per_miss_virtual);
        assert!(m.kappa(&w) >= 1.0);
    }

    #[test]
    fn plan_then_execute_matches_serial() {
        let w = by_name("streamcluster").unwrap();

        let mut serial = Matrix::new(tiny());
        serial.verbose = false;
        let want_base = serial.baseline(&w);
        let want_pom = serial.report(&w, Scheme::pom_tlb());

        let mut planned = Matrix::new(tiny());
        planned.verbose = false;
        planned.set_planning(true);
        // Placeholders during planning: identity only, all counters zero.
        let ph = planned.baseline(&w);
        assert_eq!(ph.refs, 0);
        let _ = planned.report(&w, Scheme::pom_tlb());
        let _ = planned.baseline(&w); // duplicate request is deduplicated
        planned.execute_plan(2);

        // Replay comes from the warm cache and matches the serial run.
        let a = planned.baseline(&w);
        let b = planned.report(&w, Scheme::pom_tlb());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&want_base).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&b).unwrap(),
            serde_json::to_string(&want_pom).unwrap()
        );
    }

    #[test]
    fn trace_cached_plan_matches_serial() {
        let w = by_name("gups").unwrap();

        let mut serial = Matrix::new(tiny());
        serial.verbose = false;
        let want: Vec<SimReport> =
            [Scheme::Baseline, Scheme::pom_tlb(), Scheme::SharedL2, Scheme::Tsb]
                .into_iter()
                .map(|s| serial.report(&w, s))
                .collect();

        let mut cached = Matrix::new(tiny());
        cached.verbose = false;
        cached.set_trace_cache(true);
        cached.set_planning(true);
        for s in [Scheme::Baseline, Scheme::pom_tlb(), Scheme::SharedL2, Scheme::Tsb] {
            let _ = cached.report(&w, s);
        }
        cached.execute_plan(2);

        for (s, want) in
            [Scheme::Baseline, Scheme::pom_tlb(), Scheme::SharedL2, Scheme::Tsb]
                .into_iter()
                .zip(&want)
        {
            let got = cached.report(&w, s);
            assert_eq!(format!("{got:?}"), format!("{want:?}"), "{s:?} diverged");
        }
    }

    #[test]
    fn variants_are_cached_separately() {
        let mut m = Matrix::new(tiny());
        m.verbose = false;
        let w = by_name("streamcluster").unwrap();
        let virt = m.baseline(&w);
        let native = m.native_baseline(&w);
        // Native walks are structurally cheaper.
        assert!(native.p_avg() < virt.p_avg());
    }
}
