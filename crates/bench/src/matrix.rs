//! Memoized simulation matrix and the anchored performance model.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Mutex;

use pom_tlb::perf_model::improvement_pct;
use pom_tlb::{
    run_jobs_with, share_traces_with_store, JobOutcome, RunPolicy, Scheme, SimConfig, SimJob,
    SimReport, SystemConfig,
};
use pomtlb_tlb::WalkMode;
use pomtlb_trace::TraceStore;
use pomtlb_workloads::PaperWorkload;
use serde::{Deserialize, Serialize};

/// Run-length preset for the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpConfig {
    /// Per-core simulated references after warmup.
    pub refs_per_core: u64,
    /// Per-core warmup references.
    pub warmup_per_core: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ExpConfig {
    /// The default experiment length (≈0.5 s per run in release builds).
    pub fn standard() -> ExpConfig {
        ExpConfig { refs_per_core: 40_000, warmup_per_core: 15_000, seed: 0x90af }
    }

    /// A fast smoke-test length for CI and `--quick`.
    pub fn quick() -> ExpConfig {
        ExpConfig { refs_per_core: 8_000, warmup_per_core: 4_000, seed: 0x90af }
    }

    fn sim(&self) -> SimConfig {
        SimConfig {
            refs_per_core: self.refs_per_core,
            warmup_per_core: self.warmup_per_core,
            seed: self.seed,
        }
    }
}

/// Journal format version; bumped if the line layout ever changes.
const CHECKPOINT_VERSION: u32 = 1;

/// First line of a checkpoint journal: identifies the format and pins the
/// run-length configuration, so a resume against different lengths or a
/// different seed discards the journal instead of mixing incompatible
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CheckpointHeader {
    pomtlb_checkpoint: u32,
    refs_per_core: u64,
    warmup_per_core: u64,
    seed: u64,
}

impl CheckpointHeader {
    fn for_config(cfg: &ExpConfig) -> CheckpointHeader {
        CheckpointHeader {
            pomtlb_checkpoint: CHECKPOINT_VERSION,
            refs_per_core: cfg.refs_per_core,
            warmup_per_core: cfg.warmup_per_core,
            seed: cfg.seed,
        }
    }
}

/// One completed matrix cell, journaled the moment its simulation lands.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckpointCell {
    workload: String,
    variant: String,
    report: SimReport,
}

/// An append-only JSON-lines journal of completed matrix cells.
///
/// Each line is self-contained, so a run killed mid-sweep leaves at worst
/// one torn final line; resume keeps the valid prefix, drops the tear, and
/// rewrites the journal atomically before appending again. Simulations are
/// deterministic (each cell owns its seed), so cells replayed from the
/// journal are byte-identical to recomputing them — a resumed sweep's
/// output cannot differ from an uninterrupted one.
#[derive(Debug)]
struct Checkpoint {
    path: PathBuf,
    /// Append handle; a Mutex because `execute_plan`'s workers journal
    /// cells from their own threads.
    file: Mutex<fs::File>,
}

impl Checkpoint {
    /// Serializes and appends one completed cell, flushing so a kill right
    /// after costs nothing. Journal I/O is best-effort: a failed append
    /// only warns (the cell is still cached in memory and the sweep goes
    /// on — it would merely be recomputed on a later resume).
    fn append(&self, workload: &str, variant: &str, report: &SimReport) {
        let cell = CheckpointCell {
            workload: workload.to_string(),
            variant: variant.to_string(),
            report: report.clone(),
        };
        let line = match serde_json::to_string(&cell) {
            Ok(line) => line,
            Err(e) => {
                eprintln!("checkpoint: cannot serialize cell {workload}/{variant}: {e}");
                return;
            }
        };
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
            eprintln!("checkpoint: cannot append to {}: {e}", self.path.display());
        }
    }
}

/// Memoized `(workload, scheme, system-variant) → SimReport` runner.
///
/// The anchored performance model lives here too. The paper computes
/// Figure 8 improvements from *measured* baseline penalties (Table 2) and
/// *simulated* scheme penalties (§3.2–3.3); a pure software reproduction
/// has no hardware to measure, so each workload's baseline penalty is
/// anchored at
///
/// ```text
/// P_anchor = max(P_table2, P_sim_baseline)
/// ```
///
/// — the measured number is authoritative where the simulator is too
/// optimistic about walk microarchitecture, and the simulated number is
/// authoritative where our synthetic traces stress contention harder than
/// the original run did. Scheme penalties have their *residual walk*
/// cycles rescaled by `κ = P_anchor / P_sim_baseline` so a scheme's page
/// walks cost what the anchored baseline says walks cost (see
/// `SimReport::p_avg_calibrated`).
pub struct Matrix {
    cfg: ExpConfig,
    cache: HashMap<(String, String), SimReport>,
    /// In plan mode, `report_with` records the job it *would* run and
    /// returns a zeroed placeholder instead of simulating. Jobs are kept in
    /// first-request order (deduplicated), so `execute_plan` warms the
    /// cache deterministically.
    planning: bool,
    planned: Vec<((String, String), SimJob)>,
    planned_keys: HashSet<(String, String)>,
    /// When on, `execute_plan` records each distinct input stream once and
    /// replays it to every scheme sharing it (see [`pom_tlb::share_traces`]).
    trace_cache: bool,
    /// Persistent backing for the trace cache: recordings hit here replay
    /// from disk across invocations (see [`pom_tlb::share_traces_with_store`]).
    trace_store: Option<TraceStore>,
    /// Optional journal of completed cells; `--resume` preloads the cache
    /// from it, so a killed sweep restarts where it stopped.
    checkpoint: Option<Checkpoint>,
    /// Echo each run to stderr as it happens (the full matrix takes a
    /// couple of minutes; silence is unnerving).
    pub verbose: bool,
}

impl Matrix {
    /// Creates an empty matrix.
    pub fn new(cfg: ExpConfig) -> Matrix {
        Matrix {
            cfg,
            cache: HashMap::new(),
            planning: false,
            planned: Vec::new(),
            planned_keys: HashSet::new(),
            trace_cache: false,
            trace_store: None,
            checkpoint: None,
            verbose: true,
        }
    }

    /// Attaches a checkpoint journal at `path` and, with `resume`, preloads
    /// the cache from cells a previous (possibly killed) run journaled
    /// there. Returns how many cells were restored.
    ///
    /// The journal's header must match this matrix's run-length config and
    /// seed; a mismatched or unreadable journal is discarded (restoring 0
    /// cells) rather than mixing incompatible reports. A torn final line —
    /// the signature of a kill mid-append — is dropped and the journal is
    /// compacted to its valid prefix before new cells are appended.
    /// Restored cells satisfy `report_with` straight from the cache, so the
    /// planner never re-runs them, and determinism makes the resumed output
    /// byte-identical to an uninterrupted sweep.
    pub fn set_checkpoint(&mut self, path: impl Into<PathBuf>, resume: bool) -> io::Result<usize> {
        let path = path.into();
        let header = CheckpointHeader::for_config(&self.cfg);
        let mut restored: Vec<CheckpointCell> = Vec::new();
        if resume {
            if let Ok(text) = fs::read_to_string(&path) {
                let mut lines = text.lines();
                let header_ok = lines
                    .next()
                    .and_then(|l| serde_json::from_str::<CheckpointHeader>(l).ok())
                    .is_some_and(|h| h == header);
                if header_ok {
                    for line in lines {
                        match serde_json::from_str::<CheckpointCell>(line) {
                            Ok(cell) => restored.push(cell),
                            // First unreadable line is the torn tail of a
                            // killed append; nothing after it is trusted.
                            Err(_) => break,
                        }
                    }
                } else if self.verbose {
                    eprintln!(
                        "  [ckpt] {} belongs to a different configuration; starting fresh",
                        path.display()
                    );
                }
            }
        }
        // Rewrite header + valid prefix atomically, then keep appending.
        let tmp = path.with_extension("tmp");
        {
            let mut out = fs::File::create(&tmp)?;
            writeln!(out, "{}", serde_json::to_string(&header).map_err(io::Error::other)?)?;
            for cell in &restored {
                writeln!(out, "{}", serde_json::to_string(cell).map_err(io::Error::other)?)?;
            }
            out.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        let file = fs::OpenOptions::new().append(true).open(&path)?;
        let n = restored.len();
        for cell in restored {
            self.cache.insert((cell.workload, cell.variant), cell.report);
        }
        self.checkpoint = Some(Checkpoint { path, file: Mutex::new(file) });
        Ok(n)
    }

    /// Enables shared-trace execution for planned batches: the scheme ×
    /// variant jobs of one workload consume one recording of its reference
    /// stream instead of regenerating it per job. Replay is bit-identical,
    /// so cached reports — and every figure built from them — are unchanged.
    pub fn set_trace_cache(&mut self, on: bool) {
        self.trace_cache = on;
    }

    /// Backs the trace cache with a persistent store: planned batches
    /// replay recordings from disk when present (map-on-hit) and persist
    /// what they generate (record-on-miss), so a *second* invocation over
    /// the same matrix runs zero generator passes. Implies
    /// [`Matrix::set_trace_cache`]. Store defects degrade to live
    /// generation; output never changes.
    pub fn set_trace_store(&mut self, store: Option<TraceStore>) {
        if store.is_some() {
            self.trace_cache = true;
        }
        self.trace_store = store;
    }

    /// The persistent trace store, if one is attached.
    pub fn trace_store(&self) -> Option<&TraceStore> {
        self.trace_store.as_ref()
    }

    /// Switches plan mode on or off. While planning, `report_with` records
    /// jobs instead of running them and hands back placeholder reports
    /// ([`SimReport::placeholder`] — every rate is 0, never a panic), so a
    /// figure builder can be walked cheaply to discover its simulations.
    pub fn set_planning(&mut self, on: bool) {
        self.planning = on;
    }

    /// Runs every planned job on `n_workers` threads (see
    /// [`pom_tlb::run_jobs_with`]) and moves the reports into the cache,
    /// then leaves plan mode. Rebuilding the same figures afterwards
    /// replays entirely from the warm cache, so output is byte-identical
    /// to a serial run — each job owns its seed and the cache is keyed
    /// exactly like serial memoization.
    ///
    /// Jobs run under panic isolation: a cell whose simulation panics is
    /// warned about and left uncached (its siblings complete normally),
    /// so the figure pass recomputes it on demand — and only then does the
    /// panic surface, attributed to exactly that cell. With a checkpoint
    /// attached, every completed cell is journaled the moment it lands,
    /// from the worker that ran it.
    pub fn execute_plan(&mut self, n_workers: usize) {
        self.planning = false;
        let planned = std::mem::take(&mut self.planned);
        self.planned_keys.clear();
        if planned.is_empty() {
            return;
        }
        if self.verbose {
            eprintln!("  [plan] {} simulations on {} workers", planned.len(), n_workers);
        }
        let (keys, jobs): (Vec<_>, Vec<_>) = planned.into_iter().unzip();
        let mut jobs = jobs;
        if self.trace_cache {
            let outcome = share_traces_with_store(&mut jobs, self.trace_store.as_ref());
            if self.verbose {
                eprintln!(
                    "  [plan] {} shared trace recording(s) ({} replayed from disk, {} recorded)",
                    outcome.attached, outcome.store_hits, outcome.recorded
                );
            }
        }
        let checkpoint = self.checkpoint.as_ref();
        let observer = |idx: usize, outcome: &JobOutcome| {
            if let (Some(ckpt), Some(result)) = (checkpoint, outcome.result()) {
                let (workload, variant) = &keys[idx];
                ckpt.append(workload, variant, &result.report);
            }
        };
        let outcomes = run_jobs_with(jobs, n_workers, RunPolicy::strict(), &observer);
        for (key, outcome) in keys.iter().zip(outcomes) {
            match outcome {
                JobOutcome::Panicked { label, message, .. } => {
                    eprintln!(
                        "  [plan] job `{label}` panicked ({message}); \
                         cell left uncached for on-demand recompute"
                    );
                }
                other => {
                    if let Some(result) = other.into_result() {
                        self.cache.insert(key.clone(), result.report);
                    }
                }
            }
        }
    }

    /// The run-length configuration.
    pub fn config(&self) -> ExpConfig {
        self.cfg
    }

    /// Simulates (or recalls) `workload` under `scheme` on the default
    /// Table 1 system.
    pub fn report(&mut self, w: &PaperWorkload, scheme: Scheme) -> SimReport {
        self.report_with(w, scheme, "default", SystemConfig::default())
    }

    /// Simulates (or recalls) with an explicit system variant; `variant`
    /// names it for memoization (e.g. `"cap8MB"`, `"cores4"`, `"native"`).
    pub fn report_with(
        &mut self,
        w: &PaperWorkload,
        scheme: Scheme,
        variant: &str,
        sys: SystemConfig,
    ) -> SimReport {
        let key = (w.name.to_string(), format!("{scheme:?}/{variant}"));
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        let job = SimJob::new(format!("{}/{}/{variant}", w.name, scheme.label()), &w.spec, scheme, self.cfg.sim())
            .with_system_config(sys)
            .shared_memory(w.suite.shares_memory());
        if self.planning {
            if self.planned_keys.insert(key.clone()) {
                self.planned.push((key, job));
            }
            return SimReport::placeholder(scheme, w.name, 0);
        }
        if self.verbose {
            eprintln!("  [sim] {} / {} / {variant}", w.name, scheme.label());
        }
        let report = job.run();
        if let Some(ckpt) = &self.checkpoint {
            ckpt.append(&key.0, &key.1, &report);
        }
        self.cache.insert(key, report.clone());
        report
    }

    /// The native-execution baseline (1-D walks), for Figure 3.
    pub fn native_baseline(&mut self, w: &PaperWorkload) -> SimReport {
        let sys = SystemConfig { walk_mode: WalkMode::Native, ..Default::default() };
        self.report_with(w, Scheme::Baseline, "native", sys)
    }

    /// The simulated virtualized baseline.
    pub fn baseline(&mut self, w: &PaperWorkload) -> SimReport {
        self.report(w, Scheme::Baseline)
    }

    /// The anchored baseline penalty (see type-level docs).
    pub fn p_anchor(&mut self, w: &PaperWorkload) -> f64 {
        let sim = self.baseline(w).p_avg();
        sim.max(w.table2.cycles_per_miss_virtual)
    }

    /// The walk re-pricing factor κ.
    pub fn kappa(&mut self, w: &PaperWorkload) -> f64 {
        let sim = self.baseline(w).p_avg();
        if sim <= 0.0 {
            1.0
        } else {
            self.p_anchor(w) / sim
        }
    }

    /// A scheme's calibrated per-miss penalty.
    pub fn p_scheme(&mut self, w: &PaperWorkload, scheme: Scheme) -> f64 {
        let kappa = self.kappa(w);
        self.report(w, scheme).p_avg_calibrated(kappa)
    }

    /// Figure 8's quantity: percentage performance improvement of `scheme`
    /// over the anchored baseline under the paper's additive model.
    pub fn improvement(&mut self, w: &PaperWorkload, scheme: Scheme) -> f64 {
        let anchor = self.p_anchor(w);
        let p = self.p_scheme(w, scheme);
        improvement_pct(w.table2.overhead_virtual_pct, anchor, p)
    }

    /// Like [`Matrix::improvement`] but for an explicit system variant.
    pub fn improvement_with(
        &mut self,
        w: &PaperWorkload,
        scheme: Scheme,
        variant: &str,
        sys: SystemConfig,
    ) -> f64 {
        let anchor = self.p_anchor(w);
        let kappa = self.kappa(w);
        let p = self.report_with(w, scheme, variant, sys).p_avg_calibrated(kappa);
        improvement_pct(w.table2.overhead_virtual_pct, anchor, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomtlb_workloads::by_name;

    fn tiny() -> ExpConfig {
        ExpConfig { refs_per_core: 2_000, warmup_per_core: 1_000, seed: 3 }
    }

    #[test]
    fn memoization_returns_identical_reports() {
        let mut m = Matrix::new(tiny());
        m.verbose = false;
        let w = by_name("streamcluster").unwrap();
        let a = m.report(&w, Scheme::pom_tlb());
        let b = m.report(&w, Scheme::pom_tlb());
        assert_eq!(a.l2_tlb_misses, b.l2_tlb_misses);
        assert_eq!(a.total_penalty, b.total_penalty);
    }

    #[test]
    fn anchor_is_at_least_table2() {
        let mut m = Matrix::new(tiny());
        m.verbose = false;
        let w = by_name("mcf").unwrap();
        assert!(m.p_anchor(&w) >= w.table2.cycles_per_miss_virtual);
        assert!(m.kappa(&w) >= 1.0);
    }

    #[test]
    fn plan_then_execute_matches_serial() {
        let w = by_name("streamcluster").unwrap();

        let mut serial = Matrix::new(tiny());
        serial.verbose = false;
        let want_base = serial.baseline(&w);
        let want_pom = serial.report(&w, Scheme::pom_tlb());

        let mut planned = Matrix::new(tiny());
        planned.verbose = false;
        planned.set_planning(true);
        // Placeholders during planning: identity only, all counters zero.
        let ph = planned.baseline(&w);
        assert_eq!(ph.refs, 0);
        let _ = planned.report(&w, Scheme::pom_tlb());
        let _ = planned.baseline(&w); // duplicate request is deduplicated
        planned.execute_plan(2);

        // Replay comes from the warm cache and matches the serial run.
        let a = planned.baseline(&w);
        let b = planned.report(&w, Scheme::pom_tlb());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&want_base).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&b).unwrap(),
            serde_json::to_string(&want_pom).unwrap()
        );
    }

    #[test]
    fn trace_cached_plan_matches_serial() {
        let w = by_name("gups").unwrap();

        let mut serial = Matrix::new(tiny());
        serial.verbose = false;
        let want: Vec<SimReport> =
            [Scheme::Baseline, Scheme::pom_tlb(), Scheme::SharedL2, Scheme::Tsb]
                .into_iter()
                .map(|s| serial.report(&w, s))
                .collect();

        let mut cached = Matrix::new(tiny());
        cached.verbose = false;
        cached.set_trace_cache(true);
        cached.set_planning(true);
        for s in [Scheme::Baseline, Scheme::pom_tlb(), Scheme::SharedL2, Scheme::Tsb] {
            let _ = cached.report(&w, s);
        }
        cached.execute_plan(2);

        for (s, want) in
            [Scheme::Baseline, Scheme::pom_tlb(), Scheme::SharedL2, Scheme::Tsb]
                .into_iter()
                .zip(&want)
        {
            let got = cached.report(&w, s);
            assert_eq!(format!("{got:?}"), format!("{want:?}"), "{s:?} diverged");
        }
    }

    struct TempFile(PathBuf);

    impl TempFile {
        fn new(tag: &str) -> TempFile {
            TempFile(
                std::env::temp_dir()
                    .join(format!("pomtlb-ckpt-{tag}-{}.jsonl", std::process::id())),
            )
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    fn all_schemes() -> [Scheme; 4] {
        [Scheme::Baseline, Scheme::pom_tlb(), Scheme::SharedL2, Scheme::Tsb]
    }

    /// Offline builds stub serde_json with an always-Err serializer; the
    /// journal cannot be written at all there, so the checkpoint tests
    /// only run where serialization is functional.
    fn serde_is_stubbed() -> bool {
        serde_json::to_string(&CheckpointHeader::for_config(&tiny())).is_err()
    }

    #[test]
    fn resumed_checkpoint_run_is_byte_identical() {
        if serde_is_stubbed() {
            eprintln!("serde_json stubbed; skipping checkpoint round trip");
            return;
        }
        let w = by_name("gups").unwrap();
        let ckpt = TempFile::new("resume");
        let _ = fs::remove_file(&ckpt.0);

        // Ground truth: an uninterrupted, checkpoint-free run.
        let mut truth = Matrix::new(tiny());
        truth.verbose = false;
        let want: Vec<String> = all_schemes()
            .into_iter()
            .map(|s| serde_json::to_string(&truth.report(&w, s)).unwrap())
            .collect();

        // "Killed" run: journals only the first two cells, then the
        // process (here: the Matrix) goes away.
        let mut first = Matrix::new(tiny());
        first.verbose = false;
        assert_eq!(first.set_checkpoint(&ckpt.0, true).unwrap(), 0, "nothing to resume yet");
        first.set_planning(true);
        for s in &all_schemes()[..2] {
            let _ = first.report(&w, *s);
        }
        first.execute_plan(2);
        drop(first);

        // Resumed run: the two journaled cells preload the cache (and must
        // not be planned again); the rest run now.
        let mut second = Matrix::new(tiny());
        second.verbose = false;
        let restored = second.set_checkpoint(&ckpt.0, true).unwrap();
        assert_eq!(restored, 2, "both completed cells come back");
        second.set_planning(true);
        for s in all_schemes() {
            let _ = second.report(&w, s);
        }
        assert_eq!(second.planned.len(), 2, "restored cells are not re-planned");
        second.execute_plan(2);
        for (s, want) in all_schemes().into_iter().zip(&want) {
            let got = serde_json::to_string(&second.report(&w, s)).unwrap();
            assert_eq!(&got, want, "{s:?} diverged after resume");
        }

        // Third run over the fully-journaled matrix: pure replay.
        let mut third = Matrix::new(tiny());
        third.verbose = false;
        assert_eq!(third.set_checkpoint(&ckpt.0, true).unwrap(), 4);
        for (s, want) in all_schemes().into_iter().zip(&want) {
            let got = serde_json::to_string(&third.report(&w, s)).unwrap();
            assert_eq!(&got, want, "{s:?} diverged on full replay");
        }
    }

    #[test]
    fn torn_tail_and_foreign_headers_are_discarded() {
        if serde_is_stubbed() {
            eprintln!("serde_json stubbed; skipping torn-tail test");
            return;
        }
        let w = by_name("streamcluster").unwrap();
        let ckpt = TempFile::new("torn");
        let _ = fs::remove_file(&ckpt.0);

        let mut m = Matrix::new(tiny());
        m.verbose = false;
        m.set_checkpoint(&ckpt.0, false).unwrap();
        let want = serde_json::to_string(&m.baseline(&w)).unwrap();
        drop(m);

        // A kill mid-append leaves a torn final line.
        let mut text = fs::read_to_string(&ckpt.0).unwrap();
        text.push_str("{\"workload\":\"gups\",\"vari");
        fs::write(&ckpt.0, &text).unwrap();

        let mut resumed = Matrix::new(tiny());
        resumed.verbose = false;
        assert_eq!(resumed.set_checkpoint(&ckpt.0, true).unwrap(), 1, "valid prefix survives");
        assert_eq!(serde_json::to_string(&resumed.baseline(&w)).unwrap(), want);
        // The compacted journal has no tear left (its only cell is the
        // streamcluster baseline; the torn gups fragment is gone).
        assert!(!fs::read_to_string(&ckpt.0).unwrap().contains("gups"));

        // A journal recorded under different run lengths must not leak
        // its cells into this configuration.
        let mut other_cfg = Matrix::new(ExpConfig { refs_per_core: 999, ..tiny() });
        other_cfg.verbose = false;
        assert_eq!(other_cfg.set_checkpoint(&ckpt.0, true).unwrap(), 0);
    }

    #[test]
    fn variants_are_cached_separately() {
        let mut m = Matrix::new(tiny());
        m.verbose = false;
        let w = by_name("streamcluster").unwrap();
        let virt = m.baseline(&w);
        let native = m.native_baseline(&w);
        // Native walks are structurally cheaper.
        assert!(native.p_avg() < virt.p_avg());
    }
}
