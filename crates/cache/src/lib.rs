//! Set-associative cache models and the paper's three-level data-cache
//! hierarchy.
//!
//! POM-TLB's central trick is that the in-memory TLB is *addressable*, so
//! TLB entries are cached in the ordinary L2/L3 **data** caches alongside
//! program data (§2.1.3). That makes the data-cache model a first-class
//! substrate here:
//!
//! * [`SetAssocCache`] — a generic write-back, write-allocate,
//!   LRU-replacement cache keyed by 64-byte line address; every resident
//!   line is tagged with a [`LineKind`] (`Data`, `TlbEntry`, `PageTable`) so
//!   the simulator can report the TLB-entry hit ratios of Figure 9 and the
//!   pollution effects of §4.5,
//! * [`Hierarchy`] — per-core L1/L2 plus a shared L3 with the Table 1
//!   geometry and latencies; data accesses probe L1→L2→L3, while POM-TLB
//!   set probes start at the L2 (the MMU issues them below the core, §2.1.3)
//!   and page-walker PTE fetches likewise go through L2→L3.
//!
//! Inclusion is *mostly inclusive* as in x86 (§2.2): each level fills and
//! evicts independently; no back-invalidation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hierarchy;
mod set_assoc;
mod stats;

pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{Hierarchy, Level, ProbeResult};
pub use set_assoc::{AccessOutcome, LineKind, SetAssocCache, Victim};
pub use stats::{CacheStats, KindStats};
