//! The generic set-associative cache.

use pomtlb_types::{match_mask, Hpa};
use serde::{Deserialize, Serialize};

use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// What kind of content a cache line holds.
///
/// POM-TLB makes TLB entries cacheable, so the same physical cache holds
/// program data, in-memory TLB entries and page-table entries; Figure 9 and
/// §4.5 report statistics split along this axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineKind {
    /// Ordinary program data.
    Data,
    /// A line of four POM-TLB entries.
    TlbEntry,
    /// A page-table entry line fetched by the page walker.
    PageTable,
}

impl LineKind {
    #[inline]
    fn as_u8(self) -> u8 {
        match self {
            LineKind::Data => 0,
            LineKind::TlbEntry => 1,
            LineKind::PageTable => 2,
        }
    }

    #[inline]
    fn from_u8(v: u8) -> LineKind {
        match v {
            0 => LineKind::Data,
            1 => LineKind::TlbEntry,
            _ => LineKind::PageTable,
        }
    }
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned physical address of the evicted line.
    pub addr: Hpa,
    /// Whether it was dirty (needs write-back).
    pub dirty: bool,
    /// What it held.
    pub kind: LineKind,
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already resident.
    pub hit: bool,
    /// On a filling miss, the line that was displaced (if the way was
    /// occupied).
    pub victim: Option<Victim>,
}

const KIND_TLB: u8 = 1; // LineKind::TlbEntry.as_u8(), for the protect scan

/// A write-back, write-allocate, true-LRU set-associative cache over
/// 64-byte lines.
///
/// Addresses are host-physical; the unit of storage is the line. The cache
/// does not store data bytes — it is a timing and residency model, as in
/// the paper's simulator — but it tracks residency, dirtiness and content
/// kind exactly.
///
/// Metadata is laid out structure-of-arrays: `valid` and `dirty` are one
/// bit per way in a per-set `u64` word, `kind` one byte per line, and tags
/// and LRU stamps live in their own dense arrays. A set probe therefore
/// reads one bitmask word plus `ways` consecutive tags instead of `ways`
/// 40-byte structs scattered across an array-of-structs — this cache is
/// probed several times per simulated reference (L1d/L2/L3 plus POM-TLB
/// line lookups), which makes the probe footprint the simulator's second
/// hottest path after the page walk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: u64,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two (every Table 1 geometry):
    /// the per-access set/tag split then strength-reduces from `%` / `/`
    /// to mask / shift. Zero means "not a power of two, divide".
    set_mask: u64,
    /// `log2(sets)` companion to `set_mask`.
    set_shift: u32,
    /// All ways of one set as set bits: `(1 << ways) - 1`.
    full_mask: u64,
    /// Validity of set `s`'s ways, one bit per way.
    valid: Vec<u64>,
    /// Dirtiness of set `s`'s ways, one bit per way. Only meaningful where
    /// the corresponding `valid` bit is set.
    dirty: Vec<u64>,
    /// Line tags, indexed `set * ways + way`.
    tags: Vec<u64>,
    /// LRU stamps (larger = more recently used), same indexing.
    stamps: Vec<u64>,
    /// [`LineKind`] of each line as a byte, same indexing.
    kinds: Vec<u8>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::sets`]) or
    /// associativity exceeds 64 (the per-set bitmask word).
    pub fn new(config: CacheConfig) -> SetAssocCache {
        let sets = config.sets();
        let ways = config.ways as usize;
        assert!((1..=64).contains(&ways), "associativity {ways} does not fit a bitmask word");
        let pow2 = sets.is_power_of_two();
        let lines = sets as usize * ways;
        SetAssocCache {
            config,
            sets,
            ways,
            set_mask: if pow2 { sets - 1 } else { 0 },
            set_shift: if pow2 { sets.trailing_zeros() } else { 0 },
            full_mask: if ways == 64 { u64::MAX } else { (1 << ways) - 1 },
            valid: vec![0; sets as usize],
            dirty: vec![0; sets as usize],
            tags: vec![0; lines],
            stamps: vec![0; lines],
            kinds: vec![0; lines],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Splits an address into its set index and tag.
    ///
    /// This and [`SetAssocCache::line_addr`] are exact inverses; every
    /// place that reconstructs an address from cache coordinates (victim
    /// write-backs here, shootdown invalidation of cached POM-TLB lines in
    /// the core crate) must round-trip through this pair rather than
    /// re-deriving the arithmetic.
    #[inline]
    pub fn set_and_tag(&self, addr: Hpa) -> (usize, u64) {
        let line = addr.line_index();
        if self.set_mask != 0 {
            ((line & self.set_mask) as usize, line >> self.set_shift)
        } else {
            ((line % self.sets) as usize, line / self.sets)
        }
    }

    /// Reconstructs the line-aligned address stored at `(set, tag)` — the
    /// inverse of [`SetAssocCache::set_and_tag`].
    #[inline]
    pub fn line_addr(&self, set: usize, tag: u64) -> Hpa {
        Hpa::new((tag * self.sets + set as u64) * 64)
    }

    /// The way a fill into `set` should (re)use: the lowest invalid way,
    /// or the LRU way — under §5.1 TLB-aware replacement, the LRU among
    /// data lines first, falling back to TLB-entry lines only when the
    /// whole set holds translations.
    #[inline]
    fn victim_way(&self, set: usize) -> usize {
        let free = !self.valid[set] & self.full_mask;
        if free != 0 {
            return free.trailing_zeros() as usize;
        }
        let base = set * self.ways;
        if self.config.protect_tlb_lines {
            let mut best: Option<(u64, usize)> = None;
            for w in 0..self.ways {
                if self.kinds[base + w] != KIND_TLB {
                    let stamp = self.stamps[base + w];
                    if best.is_none_or(|(s, _)| stamp < s) {
                        best = Some((stamp, w));
                    }
                }
            }
            if let Some((_, w)) = best {
                return w;
            }
        }
        let mut best_w = 0;
        for w in 1..self.ways {
            if self.stamps[base + w] < self.stamps[base + best_w] {
                best_w = w;
            }
        }
        best_w
    }

    /// The resident way holding `tag` in `set`, if any.
    ///
    /// Probes the whole set at once: a branch-free multi-lane compare of
    /// the way-contiguous tag slice (see [`pomtlb_types::match_mask`])
    /// ANDed with the set's valid bitmask, instead of iterating live ways
    /// and testing tags one at a time. Invalid ways may hold stale tags;
    /// the valid-mask AND discards their lanes.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let hits = match_mask(&self.tags[base..base + self.ways], tag) & self.valid[set];
        (hits != 0).then(|| hits.trailing_zeros() as usize)
    }

    /// Accesses (and on miss, fills) the line containing `addr`.
    ///
    /// `write` marks the line dirty on hit or fill. `kind` tags the fill;
    /// the paper's data caches are agnostic, the tag exists purely for
    /// statistics.
    pub fn access(&mut self, addr: Hpa, write: bool, kind: LineKind) -> AccessOutcome {
        self.clock += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;

        if let Some(w) = self.find_way(set, tag) {
            self.stamps[base + w] = self.clock;
            if write {
                self.dirty[set] |= 1 << w;
            }
            let hit_kind = LineKind::from_u8(self.kinds[base + w]);
            self.stats.record(hit_kind, true);
            return AccessOutcome { hit: true, victim: None };
        }

        let w = self.victim_way(set);
        let bit = 1u64 << w;
        let was_valid = self.valid[set] & bit != 0;
        let victim = was_valid.then(|| Victim {
            addr: self.line_addr(set, self.tags[base + w]),
            dirty: self.dirty[set] & bit != 0,
            kind: LineKind::from_u8(self.kinds[base + w]),
        });
        self.valid[set] |= bit;
        if write {
            self.dirty[set] |= bit;
        } else {
            self.dirty[set] &= !bit;
        }
        self.tags[base + w] = tag;
        self.stamps[base + w] = self.clock;
        self.kinds[base + w] = kind.as_u8();
        self.stats.record(kind, false);
        if let Some(v) = &victim {
            self.stats.record_eviction(v.kind, v.dirty);
        }
        AccessOutcome { hit: false, victim }
    }

    /// Fills the line containing `addr` if absent, without touching the
    /// hit/miss statistics — the prefetcher's path. Victim evictions are
    /// still recorded (they are real traffic).
    pub fn fill_quiet(&mut self, addr: Hpa, kind: LineKind) {
        self.clock += 1;
        let (set, tag) = self.set_and_tag(addr);
        if self.find_way(set, tag).is_some() {
            return;
        }
        let base = set * self.ways;
        let w = self.victim_way(set);
        let bit = 1u64 << w;
        if self.valid[set] & bit != 0 {
            self.stats.record_eviction(
                LineKind::from_u8(self.kinds[base + w]),
                self.dirty[set] & bit != 0,
            );
        }
        self.valid[set] |= bit;
        self.dirty[set] &= !bit;
        self.tags[base + w] = tag;
        self.stamps[base + w] = self.clock;
        self.kinds[base + w] = kind.as_u8();
    }

    /// Checks residency without updating LRU or statistics.
    pub fn contains(&self, addr: Hpa) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.find_way(set, tag).is_some()
    }

    /// Invalidates the line containing `addr` if resident; returns whether
    /// it was present. Used for TLB shootdowns of cached POM-TLB lines.
    pub fn invalidate(&mut self, addr: Hpa) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        match self.find_way(set, tag) {
            Some(w) => {
                self.valid[set] &= !(1 << w);
                self.dirty[set] &= !(1 << w);
                true
            }
            None => false,
        }
    }

    /// Number of resident lines of each kind, for occupancy reports.
    pub fn occupancy(&self, kind: LineKind) -> u64 {
        let k = kind.as_u8();
        let mut n = 0;
        for set in 0..self.sets as usize {
            let base = set * self.ways;
            let mut live = self.valid[set];
            while live != 0 {
                let w = live.trailing_zeros() as usize;
                if self.kinds[base + w] == k {
                    n += 1;
                }
                live &= live - 1;
            }
        }
        n
    }

    /// Total resident lines.
    pub fn resident_lines(&self) -> u64 {
        self.valid.iter().map(|v| v.count_ones() as u64).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics without touching contents (post-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B.
        SetAssocCache::new(CacheConfig::new(512, 2, 1))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(Hpa::new(0x100), false, LineKind::Data).hit);
        assert!(c.access(Hpa::new(0x100), false, LineKind::Data).hit);
        assert!(c.access(Hpa::new(0x13f), false, LineKind::Data).hit, "same line");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to set 0 (set stride = 4 lines = 256B).
        let a = Hpa::new(0);
        let b = Hpa::new(256);
        let d = Hpa::new(256 * 2);
        c.access(a, false, LineKind::Data);
        c.access(b, false, LineKind::Data);
        c.access(a, false, LineKind::Data); // a now MRU
        let out = c.access(d, false, LineKind::Data);
        let victim = out.victim.expect("full set must evict");
        assert_eq!(victim.addr.line_index(), b.line_index());
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn dirty_propagates_to_victim() {
        let mut c = small();
        c.access(Hpa::new(0), true, LineKind::Data);
        c.access(Hpa::new(256), false, LineKind::Data);
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        let v = out.victim.unwrap();
        assert!(v.dirty, "written line must come out dirty");
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(Hpa::new(0), false, LineKind::Data);
        c.access(Hpa::new(0), true, LineKind::Data);
        c.access(Hpa::new(256), false, LineKind::Data);
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        assert!(out.victim.unwrap().dirty);
    }

    #[test]
    fn kinds_tracked_separately() {
        let mut c = small();
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(64), false, LineKind::Data);
        c.access(Hpa::new(128), false, LineKind::PageTable);
        assert_eq!(c.occupancy(LineKind::TlbEntry), 1);
        assert_eq!(c.occupancy(LineKind::Data), 1);
        assert_eq!(c.occupancy(LineKind::PageTable), 1);
        assert_eq!(c.resident_lines(), 3);
    }

    #[test]
    fn hit_records_resident_kind_not_request_kind() {
        let mut c = small();
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        assert_eq!(c.stats().kind(LineKind::TlbEntry).hits, 1);
        assert_eq!(c.stats().kind(LineKind::TlbEntry).misses, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(Hpa::new(0x40), false, LineKind::TlbEntry);
        assert!(c.invalidate(Hpa::new(0x40)));
        assert!(!c.contains(Hpa::new(0x40)));
        assert!(!c.invalidate(Hpa::new(0x40)), "double invalidate is a no-op");
    }

    #[test]
    fn contains_does_not_disturb_lru() {
        let mut c = small();
        let a = Hpa::new(0);
        let b = Hpa::new(256);
        c.access(a, false, LineKind::Data);
        c.access(b, false, LineKind::Data);
        // Peek at `a` (would make it MRU if it updated LRU state).
        assert!(c.contains(a));
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        // True LRU order is still a,b -> a is the victim.
        assert_eq!(out.victim.unwrap().addr.line_index(), a.line_index());
    }

    #[test]
    fn victim_address_reconstructs_correctly() {
        let mut c = small();
        let addr = Hpa::new(0x1040);
        c.access(addr, false, LineKind::Data);
        // Fill the same set until `addr` is evicted, and check the victim
        // address matches bit for bit (line-aligned).
        let mut evicted = None;
        for i in 0..8u64 {
            let other = Hpa::new(0x1040 + 256 * (i + 1));
            if let Some(v) = c.access(other, false, LineKind::Data).victim {
                if v.addr.line_index() == addr.line_index() {
                    evicted = Some(v);
                    break;
                }
            }
        }
        let v = evicted.expect("line must eventually be evicted");
        assert_eq!(v.addr, addr.line_base());
    }

    #[test]
    fn line_addr_inverts_set_and_tag() {
        let c = small();
        for i in 0..512u64 {
            let addr = Hpa::new(i * 64 + (i % 64));
            let (set, tag) = c.set_and_tag(addr);
            assert_eq!(c.line_addr(set, tag), addr.line_base());
        }
    }

    #[test]
    fn stats_hits_plus_misses_equals_accesses() {
        let mut c = small();
        let mut x = 7u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access(Hpa::new(x % 4096), false, LineKind::Data);
        }
        let s = c.stats();
        assert_eq!(s.total_hits() + s.total_misses(), 1000);
    }

    #[test]
    fn tlb_aware_policy_protects_translation_lines() {
        // 2-way set: one TLB line + one data line; a data fill must evict
        // the data line, not the translation.
        let mut c = SetAssocCache::new(CacheConfig::new(512, 2, 1).with_tlb_protection());
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(256), false, LineKind::Data);
        // Make the TLB line the LRU of the set.
        c.access(Hpa::new(256), false, LineKind::Data);
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        let v = out.victim.expect("full set evicts");
        assert_eq!(v.kind, LineKind::Data, "data evicted despite being MRU-adjacent");
        assert!(c.contains(Hpa::new(0)), "TLB line survives");
    }

    #[test]
    fn tlb_aware_policy_falls_back_when_set_is_all_tlb() {
        let mut c = SetAssocCache::new(CacheConfig::new(512, 2, 1).with_tlb_protection());
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(256), false, LineKind::TlbEntry);
        let out = c.access(Hpa::new(512), false, LineKind::TlbEntry);
        assert_eq!(out.victim.expect("evicts").kind, LineKind::TlbEntry);
    }

    #[test]
    fn default_policy_ignores_kind() {
        let mut c = small();
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(256), false, LineKind::Data);
        // TLB line is LRU; without protection it goes.
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        assert_eq!(out.victim.expect("evicts").kind, LineKind::TlbEntry);
    }

    // -----------------------------------------------------------------
    // Reference-model cross-check: the pre-SoA array-of-structs
    // implementation, kept verbatim as an executable specification. A
    // recorded pseudo-random access script must drive the packed cache and
    // this model to identical outcomes, victims, dirty bits and stats.
    // -----------------------------------------------------------------

    #[derive(Clone, Copy)]
    struct RefLine {
        tag: u64,
        valid: bool,
        dirty: bool,
        kind: LineKind,
        stamp: u64,
    }

    struct RefCache {
        sets: u64,
        ways: usize,
        protect: bool,
        lines: Vec<RefLine>,
        clock: u64,
    }

    impl RefCache {
        fn new(sets: u64, ways: usize, protect: bool) -> RefCache {
            let invalid =
                RefLine { tag: 0, valid: false, dirty: false, kind: LineKind::Data, stamp: 0 };
            RefCache { sets, ways, protect, lines: vec![invalid; sets as usize * ways], clock: 0 }
        }

        fn set_and_tag(&self, addr: Hpa) -> (usize, u64) {
            // Always the div/mod fallback — the reference model does not
            // strength-reduce, so it also specifies the non-power-of-two
            // path.
            let line = addr.line_index();
            ((line % self.sets) as usize, line / self.sets)
        }

        fn access(&mut self, addr: Hpa, write: bool, kind: LineKind) -> AccessOutcome {
            self.clock += 1;
            let clock = self.clock;
            let protect = self.protect;
            let (set, tag) = self.set_and_tag(addr);
            let ways = self.ways;
            let sets = self.sets;
            let start = set * ways;
            let lines = &mut self.lines[start..start + ways];
            if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
                line.stamp = clock;
                line.dirty |= write;
                return AccessOutcome { hit: true, victim: None };
            }
            let victim_way = (0..ways)
                .find(|&w| !lines[w].valid)
                .or_else(|| {
                    if protect {
                        (0..ways)
                            .filter(|&w| lines[w].kind != LineKind::TlbEntry)
                            .min_by_key(|&w| lines[w].stamp)
                    } else {
                        None
                    }
                })
                .unwrap_or_else(|| (0..ways).min_by_key(|&w| lines[w].stamp).unwrap());
            let old = lines[victim_way];
            lines[victim_way] = RefLine { tag, valid: true, dirty: write, kind, stamp: clock };
            let victim = old.valid.then(|| Victim {
                addr: Hpa::new((old.tag * sets + set as u64) * 64),
                dirty: old.dirty,
                kind: old.kind,
            });
            AccessOutcome { hit: false, victim }
        }

        fn invalidate(&mut self, addr: Hpa) -> bool {
            let (set, tag) = self.set_and_tag(addr);
            let start = set * self.ways;
            for line in &mut self.lines[start..start + self.ways] {
                if line.valid && line.tag == tag {
                    line.valid = false;
                    line.dirty = false;
                    return true;
                }
            }
            false
        }

        fn resident(&self) -> u64 {
            self.lines.iter().filter(|l| l.valid).count() as u64
        }
    }

    /// Builds a cache whose set count is NOT a power of two, exercising
    /// the `set_mask == 0` div/mod fallback in `set_and_tag`. No
    /// [`CacheConfig`] geometry produces this (sizes are powers of two),
    /// so the struct is assembled directly.
    fn non_pow2(sets: u64, ways: usize, protect: bool) -> SetAssocCache {
        let config = if protect {
            CacheConfig::new(512, ways as u32, 1).with_tlb_protection()
        } else {
            CacheConfig::new(512, ways as u32, 1)
        };
        let lines = sets as usize * ways;
        SetAssocCache {
            config,
            sets,
            ways,
            set_mask: 0,
            set_shift: 0,
            full_mask: (1 << ways) - 1,
            valid: vec![0; sets as usize],
            dirty: vec![0; sets as usize],
            tags: vec![0; lines],
            stamps: vec![0; lines],
            kinds: vec![0; lines],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Replays a deterministic access script against the packed cache and
    /// the AoS reference model, asserting step-for-step equality.
    fn cross_check(mut cache: SetAssocCache, sets: u64, ways: usize, protect: bool, steps: u32) {
        let mut reference = RefCache::new(sets, ways, protect);
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut accesses = 0u64;
        for step in 0..steps {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Small address range so sets stay full and evictions are
            // constant; mixed kinds so the protect scan is exercised.
            let addr = Hpa::new((x >> 11) % (sets * ways as u64 * 64 * 3));
            let write = x & 1 != 0;
            let kind = LineKind::from_u8(((x >> 1) % 3) as u8);
            if x.is_multiple_of(13) {
                assert_eq!(
                    cache.invalidate(addr),
                    reference.invalidate(addr),
                    "invalidate diverged at step {step}"
                );
            } else {
                accesses += 1;
                let got = cache.access(addr, write, kind);
                let want = reference.access(addr, write, kind);
                assert_eq!(got, want, "access({addr:?}) diverged at step {step}");
            }
        }
        assert_eq!(cache.resident_lines(), reference.resident());
        let s = cache.stats();
        assert_eq!(s.total_hits() + s.total_misses(), accesses);
    }

    #[test]
    fn soa_matches_aos_reference_pow2() {
        // Power-of-two geometry still goes through the same fill/victim
        // bookkeeping; the reference uses div/mod, which is equivalent.
        cross_check(small(), 4, 2, false, 4000);
    }

    #[test]
    fn soa_matches_aos_reference_with_tlb_protection() {
        let cache = SetAssocCache::new(CacheConfig::new(2048, 4, 1).with_tlb_protection());
        cross_check(cache, 8, 4, true, 6000);
    }

    #[test]
    fn soa_matches_aos_reference_non_pow2_sets() {
        cross_check(non_pow2(3, 2, false), 3, 2, false, 4000);
        cross_check(non_pow2(5, 4, true), 5, 4, true, 6000);
    }

    #[test]
    fn non_pow2_set_and_tag_round_trips() {
        let c = non_pow2(3, 2, false);
        for i in 0..300u64 {
            let addr = Hpa::new(i * 64 + (i % 64));
            let (set, tag) = c.set_and_tag(addr);
            assert!(set < 3);
            assert_eq!((set as u64 + tag * 3), addr.line_index());
            assert_eq!(c.line_addr(set, tag), addr.line_base());
        }
    }

    #[test]
    fn non_pow2_victim_addresses_reconstruct() {
        let mut c = non_pow2(3, 2, false);
        let a = Hpa::new(0x40); // line 1 -> set 1
        c.access(a, true, LineKind::Data);
        // Two more lines of set 1: line indices 4 and 7.
        c.access(Hpa::new(4 * 64), false, LineKind::Data);
        let out = c.access(Hpa::new(7 * 64), false, LineKind::Data);
        let v = out.victim.expect("set of 2 ways overflows on third line");
        assert_eq!(v.addr, a.line_base());
        assert!(v.dirty);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_resident_after_access(addr in any::<u64>()) {
            let mut c = small();
            c.access(Hpa::new(addr), false, LineKind::Data);
            prop_assert!(c.contains(Hpa::new(addr)));
        }

        #[test]
        fn prop_occupancy_bounded_by_capacity(addrs in proptest::collection::vec(any::<u64>(), 1..200)) {
            let mut c = small();
            for a in addrs {
                c.access(Hpa::new(a), false, LineKind::Data);
            }
            prop_assert!(c.resident_lines() <= 8); // 4 sets x 2 ways
        }

        #[test]
        fn prop_eviction_conserves_lines(addrs in proptest::collection::vec(0u64..8192, 1..300)) {
            let mut c = small();
            let mut fills = 0u64;
            let mut evictions = 0u64;
            for a in addrs {
                let out = c.access(Hpa::new(a), false, LineKind::Data);
                if !out.hit {
                    fills += 1;
                }
                if out.victim.is_some() {
                    evictions += 1;
                }
            }
            prop_assert_eq!(fills - evictions, c.resident_lines());
        }
    }
}
