//! The generic set-associative cache.

use pomtlb_types::Hpa;
use serde::{Deserialize, Serialize};

use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// What kind of content a cache line holds.
///
/// POM-TLB makes TLB entries cacheable, so the same physical cache holds
/// program data, in-memory TLB entries and page-table entries; Figure 9 and
/// §4.5 report statistics split along this axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineKind {
    /// Ordinary program data.
    Data,
    /// A line of four POM-TLB entries.
    TlbEntry,
    /// A page-table entry line fetched by the page walker.
    PageTable,
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned physical address of the evicted line.
    pub addr: Hpa,
    /// Whether it was dirty (needs write-back).
    pub dirty: bool,
    /// What it held.
    pub kind: LineKind,
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already resident.
    pub hit: bool,
    /// On a filling miss, the line that was displaced (if the way was
    /// occupied).
    pub victim: Option<Victim>,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    kind: LineKind,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
}

const INVALID: Line =
    Line { tag: 0, valid: false, dirty: false, kind: LineKind::Data, stamp: 0 };

/// A write-back, write-allocate, true-LRU set-associative cache over
/// 64-byte lines.
///
/// Addresses are host-physical; the unit of storage is the line. The cache
/// does not store data bytes — it is a timing and residency model, as in
/// the paper's simulator — but it tracks residency, dirtiness and content
/// kind exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: u64,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two (every Table 1 geometry):
    /// the per-access set/tag split then strength-reduces from `%` / `/`
    /// to mask / shift. Zero means "not a power of two, divide".
    set_mask: u64,
    /// `log2(sets)` companion to `set_mask`.
    set_shift: u32,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> SetAssocCache {
        let sets = config.sets();
        let ways = config.ways as usize;
        let pow2 = sets.is_power_of_two();
        SetAssocCache {
            config,
            sets,
            ways,
            set_mask: if pow2 { sets - 1 } else { 0 },
            set_shift: if pow2 { sets.trailing_zeros() } else { 0 },
            lines: vec![INVALID; (sets as usize) * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_and_tag(&self, addr: Hpa) -> (usize, u64) {
        let line = addr.line_index();
        if self.set_mask != 0 {
            ((line & self.set_mask) as usize, line >> self.set_shift)
        } else {
            ((line % self.sets) as usize, line / self.sets)
        }
    }

    #[inline]
    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        let start = set * self.ways;
        &mut self.lines[start..start + self.ways]
    }

    /// Accesses (and on miss, fills) the line containing `addr`.
    ///
    /// `write` marks the line dirty on hit or fill. `kind` tags the fill;
    /// the paper's data caches are agnostic, the tag exists purely for
    /// statistics.
    pub fn access(&mut self, addr: Hpa, write: bool, kind: LineKind) -> AccessOutcome {
        self.clock += 1;
        let clock = self.clock;
        let protect = self.config.protect_tlb_lines;
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.ways;
        let lines = self.set_slice(set);

        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = clock;
            line.dirty |= write;
            let hit_kind = line.kind;
            self.stats.record(hit_kind, true);
            return AccessOutcome { hit: true, victim: None };
        }

        // Miss: choose the invalid way or the victim. Under §5.1
        // TLB-aware replacement, LRU runs over data lines first and only
        // falls back to TLB-entry lines when the whole set holds
        // translations.
        let victim_way = (0..ways)
            .find(|&w| !lines[w].valid)
            .or_else(|| {
                if protect {
                    (0..ways)
                        .filter(|&w| lines[w].kind != LineKind::TlbEntry)
                        .min_by_key(|&w| lines[w].stamp)
                } else {
                    None
                }
            })
            .unwrap_or_else(|| {
                (0..ways)
                    .min_by_key(|&w| lines[w].stamp)
                    .expect("nonzero associativity")
            });
        let old = lines[victim_way];
        lines[victim_way] = Line { tag, valid: true, dirty: write, kind, stamp: clock };
        self.stats.record(kind, false);
        let victim = old.valid.then(|| Victim {
            addr: self.line_addr(set, old.tag),
            dirty: old.dirty,
            kind: old.kind,
        });
        if let Some(v) = &victim {
            self.stats.record_eviction(v.kind, v.dirty);
        }
        AccessOutcome { hit: false, victim }
    }

    /// Fills the line containing `addr` if absent, without touching the
    /// hit/miss statistics — the prefetcher's path. Victim evictions are
    /// still recorded (they are real traffic).
    pub fn fill_quiet(&mut self, addr: Hpa, kind: LineKind) {
        self.clock += 1;
        let clock = self.clock;
        let protect = self.config.protect_tlb_lines;
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.ways;
        let lines = self.set_slice(set);
        if lines.iter().any(|l| l.valid && l.tag == tag) {
            return;
        }
        let victim_way = (0..ways)
            .find(|&w| !lines[w].valid)
            .or_else(|| {
                if protect {
                    (0..ways)
                        .filter(|&w| lines[w].kind != LineKind::TlbEntry)
                        .min_by_key(|&w| lines[w].stamp)
                } else {
                    None
                }
            })
            .unwrap_or_else(|| {
                (0..ways).min_by_key(|&w| lines[w].stamp).expect("nonzero associativity")
            });
        let old = lines[victim_way];
        lines[victim_way] = Line { tag, valid: true, dirty: false, kind, stamp: clock };
        if old.valid {
            self.stats.record_eviction(old.kind, old.dirty);
        }
    }

    /// Checks residency without updating LRU or statistics.
    pub fn contains(&self, addr: Hpa) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let start = set * self.ways;
        self.lines[start..start + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr` if resident; returns whether
    /// it was present. Used for TLB shootdowns of cached POM-TLB lines.
    pub fn invalidate(&mut self, addr: Hpa) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        for line in self.set_slice(set) {
            if line.valid && line.tag == tag {
                *line = INVALID;
                return true;
            }
        }
        false
    }

    /// Number of resident lines of each kind, for occupancy reports.
    pub fn occupancy(&self, kind: LineKind) -> u64 {
        self.lines.iter().filter(|l| l.valid && l.kind == kind).count() as u64
    }

    /// Total resident lines.
    pub fn resident_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics without touching contents (post-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn line_addr(&self, set: usize, tag: u64) -> Hpa {
        Hpa::new((tag * self.sets + set as u64) * 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B.
        SetAssocCache::new(CacheConfig::new(512, 2, 1))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(Hpa::new(0x100), false, LineKind::Data).hit);
        assert!(c.access(Hpa::new(0x100), false, LineKind::Data).hit);
        assert!(c.access(Hpa::new(0x13f), false, LineKind::Data).hit, "same line");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to set 0 (set stride = 4 lines = 256B).
        let a = Hpa::new(0);
        let b = Hpa::new(256);
        let d = Hpa::new(256 * 2);
        c.access(a, false, LineKind::Data);
        c.access(b, false, LineKind::Data);
        c.access(a, false, LineKind::Data); // a now MRU
        let out = c.access(d, false, LineKind::Data);
        let victim = out.victim.expect("full set must evict");
        assert_eq!(victim.addr.line_index(), b.line_index());
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn dirty_propagates_to_victim() {
        let mut c = small();
        c.access(Hpa::new(0), true, LineKind::Data);
        c.access(Hpa::new(256), false, LineKind::Data);
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        let v = out.victim.unwrap();
        assert!(v.dirty, "written line must come out dirty");
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(Hpa::new(0), false, LineKind::Data);
        c.access(Hpa::new(0), true, LineKind::Data);
        c.access(Hpa::new(256), false, LineKind::Data);
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        assert!(out.victim.unwrap().dirty);
    }

    #[test]
    fn kinds_tracked_separately() {
        let mut c = small();
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(64), false, LineKind::Data);
        c.access(Hpa::new(128), false, LineKind::PageTable);
        assert_eq!(c.occupancy(LineKind::TlbEntry), 1);
        assert_eq!(c.occupancy(LineKind::Data), 1);
        assert_eq!(c.occupancy(LineKind::PageTable), 1);
        assert_eq!(c.resident_lines(), 3);
    }

    #[test]
    fn hit_records_resident_kind_not_request_kind() {
        let mut c = small();
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        assert_eq!(c.stats().kind(LineKind::TlbEntry).hits, 1);
        assert_eq!(c.stats().kind(LineKind::TlbEntry).misses, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(Hpa::new(0x40), false, LineKind::TlbEntry);
        assert!(c.invalidate(Hpa::new(0x40)));
        assert!(!c.contains(Hpa::new(0x40)));
        assert!(!c.invalidate(Hpa::new(0x40)), "double invalidate is a no-op");
    }

    #[test]
    fn contains_does_not_disturb_lru() {
        let mut c = small();
        let a = Hpa::new(0);
        let b = Hpa::new(256);
        c.access(a, false, LineKind::Data);
        c.access(b, false, LineKind::Data);
        // Peek at `a` (would make it MRU if it updated LRU state).
        assert!(c.contains(a));
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        // True LRU order is still a,b -> a is the victim.
        assert_eq!(out.victim.unwrap().addr.line_index(), a.line_index());
    }

    #[test]
    fn victim_address_reconstructs_correctly() {
        let mut c = small();
        let addr = Hpa::new(0x1040);
        c.access(addr, false, LineKind::Data);
        // Fill the same set until `addr` is evicted, and check the victim
        // address matches bit for bit (line-aligned).
        let mut evicted = None;
        for i in 0..8u64 {
            let other = Hpa::new(0x1040 + 256 * (i + 1));
            if let Some(v) = c.access(other, false, LineKind::Data).victim {
                if v.addr.line_index() == addr.line_index() {
                    evicted = Some(v);
                    break;
                }
            }
        }
        let v = evicted.expect("line must eventually be evicted");
        assert_eq!(v.addr, addr.line_base());
    }

    #[test]
    fn stats_hits_plus_misses_equals_accesses() {
        let mut c = small();
        let mut x = 7u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access(Hpa::new(x % 4096), false, LineKind::Data);
        }
        let s = c.stats();
        assert_eq!(s.total_hits() + s.total_misses(), 1000);
    }

    #[test]
    fn tlb_aware_policy_protects_translation_lines() {
        // 2-way set: one TLB line + one data line; a data fill must evict
        // the data line, not the translation.
        let mut c = SetAssocCache::new(CacheConfig::new(512, 2, 1).with_tlb_protection());
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(256), false, LineKind::Data);
        // Make the TLB line the LRU of the set.
        c.access(Hpa::new(256), false, LineKind::Data);
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        let v = out.victim.expect("full set evicts");
        assert_eq!(v.kind, LineKind::Data, "data evicted despite being MRU-adjacent");
        assert!(c.contains(Hpa::new(0)), "TLB line survives");
    }

    #[test]
    fn tlb_aware_policy_falls_back_when_set_is_all_tlb() {
        let mut c = SetAssocCache::new(CacheConfig::new(512, 2, 1).with_tlb_protection());
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(256), false, LineKind::TlbEntry);
        let out = c.access(Hpa::new(512), false, LineKind::TlbEntry);
        assert_eq!(out.victim.expect("evicts").kind, LineKind::TlbEntry);
    }

    #[test]
    fn default_policy_ignores_kind() {
        let mut c = small();
        c.access(Hpa::new(0), false, LineKind::TlbEntry);
        c.access(Hpa::new(256), false, LineKind::Data);
        // TLB line is LRU; without protection it goes.
        let out = c.access(Hpa::new(512), false, LineKind::Data);
        assert_eq!(out.victim.expect("evicts").kind, LineKind::TlbEntry);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_resident_after_access(addr in any::<u64>()) {
            let mut c = small();
            c.access(Hpa::new(addr), false, LineKind::Data);
            prop_assert!(c.contains(Hpa::new(addr)));
        }

        #[test]
        fn prop_occupancy_bounded_by_capacity(addrs in proptest::collection::vec(any::<u64>(), 1..200)) {
            let mut c = small();
            for a in addrs {
                c.access(Hpa::new(a), false, LineKind::Data);
            }
            prop_assert!(c.resident_lines() <= 8); // 4 sets x 2 ways
        }

        #[test]
        fn prop_eviction_conserves_lines(addrs in proptest::collection::vec(0u64..8192, 1..300)) {
            let mut c = small();
            let mut fills = 0u64;
            let mut evictions = 0u64;
            for a in addrs {
                let out = c.access(Hpa::new(a), false, LineKind::Data);
                if !out.hit {
                    fills += 1;
                }
                if out.victim.is_some() {
                    evictions += 1;
                }
            }
            prop_assert_eq!(fills - evictions, c.resident_lines());
        }
    }
}
