//! Cache geometry and latency configuration.

use pomtlb_types::{Cycles, CACHE_LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Geometry and access latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Lookup latency in CPU cycles.
    pub latency: Cycles,
    /// §5.1 "TLB-Aware Caching": when choosing a victim, prefer evicting
    /// data lines over resident POM-TLB entry lines (an L2 TLB miss is a
    /// blocking event; a data miss usually overlaps). Off by default — the
    /// paper proposes this as an unlockable benefit, not part of the
    /// evaluated design.
    pub protect_tlb_lines: bool,
}

impl CacheConfig {
    /// Creates a config (TLB-aware replacement off).
    pub const fn new(capacity_bytes: u64, ways: u32, latency_cycles: u64) -> CacheConfig {
        CacheConfig {
            capacity_bytes,
            ways,
            latency: Cycles::new(latency_cycles),
            protect_tlb_lines: false,
        }
    }

    /// The same geometry with §5.1 TLB-aware replacement enabled.
    pub const fn with_tlb_protection(mut self) -> CacheConfig {
        self.protect_tlb_lines = true;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (capacity not divisible into a
    /// power-of-two number of sets of `ways` lines).
    pub fn sets(&self) -> u64 {
        let lines = self.capacity_bytes / CACHE_LINE_BYTES;
        assert!(self.ways > 0, "cache needs at least one way");
        assert!(
            lines.is_multiple_of(self.ways as u64),
            "capacity {} not divisible by ways {}",
            self.capacity_bytes,
            self.ways
        );
        let sets = lines / self.ways as u64;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        sets
    }
}

/// The Table 1 data-cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Per-core L1 data cache: 32 KB, 8-way, 4 cycles.
    pub l1: CacheConfig,
    /// Per-core unified L2: 256 KB, 4-way, 12 cycles.
    pub l2: CacheConfig,
    /// Shared L3: 8 MB, 16-way, 42 cycles.
    pub l3: CacheConfig,
    /// Next-line prefetch on MMU probe streams: the L2 streamer prefetcher
    /// tracks the sequential 64-byte set probes a page-adjacent TLB-miss
    /// stream produces, exactly as it tracks sequential data streams.
    pub mmu_next_line_prefetch: bool,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(32 << 10, 8, 4),
            l2: CacheConfig::new(256 << 10, 4, 12),
            l3: CacheConfig::new(8 << 20, 16, 42),
            mmu_next_line_prefetch: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries() {
        let h = HierarchyConfig::default();
        assert_eq!(h.l1.sets(), 64); // 32KB / 64B / 8
        assert_eq!(h.l2.sets(), 1024); // 256KB / 64B / 4
        assert_eq!(h.l3.sets(), 8192); // 8MB / 64B / 16
        assert_eq!(h.l1.latency, Cycles::new(4));
        assert_eq!(h.l2.latency, Cycles::new(12));
        assert_eq!(h.l3.latency, Cycles::new(42));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        CacheConfig::new(3 * 64 * 4, 4, 1).sets();
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_ways() {
        CacheConfig::new(64 * 10, 3, 1).sets();
    }
}
