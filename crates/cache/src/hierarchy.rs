//! The three-level data-cache hierarchy of Table 1.

use pomtlb_types::{CoreId, Cycles, Hpa};
use serde::{Deserialize, Serialize};

use crate::config::HierarchyConfig;
use crate::set_assoc::{LineKind, SetAssocCache};
use crate::stats::CacheStats;

/// Which level serviced a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Per-core L1 data cache.
    L1,
    /// Per-core unified L2.
    L2,
    /// Shared L3.
    L3,
    /// Missed every probed level; the caller must go to memory.
    Memory,
}

/// Result of walking a request down the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// The level that hit, or [`Level::Memory`].
    pub level: Level,
    /// Sum of lookup latencies of every level probed. Memory latency is
    /// *not* included — the caller charges the DRAM model.
    pub latency: Cycles,
}

impl ProbeResult {
    /// Whether the request was satisfied on-chip.
    pub fn hit(&self) -> bool {
        self.level != Level::Memory
    }
}

/// Per-core L1 + L2 and a shared L3, with the paper's probe paths:
///
/// * [`Hierarchy::access_data`] — core loads/stores: L1 → L2 → L3,
/// * [`Hierarchy::access_tlb_line`] — MMU probes for POM-TLB set lines:
///   **L2 → L3** ("the MMU then issues a load request to the L2D$", §2.1.3),
/// * [`Hierarchy::access_page_table`] — page-walker PTE fetches: L2 → L3
///   (PTEs are cached in data caches, §1).
///
/// All paths are allocate-on-miss at every probed level (mostly-inclusive,
/// no back-invalidation, §2.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
}

impl Hierarchy {
    /// Builds the hierarchy for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or a cache geometry is degenerate.
    pub fn new(config: HierarchyConfig, n_cores: usize) -> Hierarchy {
        assert!(n_cores > 0, "need at least one core");
        Hierarchy {
            config,
            l1: (0..n_cores).map(|_| SetAssocCache::new(config.l1)).collect(),
            l2: (0..n_cores).map(|_| SetAssocCache::new(config.l2)).collect(),
            l3: SetAssocCache::new(config.l3),
        }
    }

    /// Number of cores the hierarchy was built for.
    pub fn n_cores(&self) -> usize {
        self.l1.len()
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// A core's load/store: probes L1 → L2 → L3, filling on the way.
    pub fn access_data(&mut self, core: CoreId, addr: Hpa, write: bool) -> ProbeResult {
        let c = core.index();
        let mut latency = self.config.l1.latency;
        if self.l1[c].access(addr, write, LineKind::Data).hit {
            return ProbeResult { level: Level::L1, latency };
        }
        latency += self.config.l2.latency;
        if self.l2[c].access(addr, write, LineKind::Data).hit {
            return ProbeResult { level: Level::L2, latency };
        }
        latency += self.config.l3.latency;
        if self.l3.access(addr, write, LineKind::Data).hit {
            return ProbeResult { level: Level::L3, latency };
        }
        ProbeResult { level: Level::Memory, latency }
    }

    /// An MMU probe for a POM-TLB set line: L2 → L3 only.
    ///
    /// `write` models the MMU updating entry metadata (LRU bits) or
    /// installing a new translation into the cached line.
    pub fn access_tlb_line(&mut self, core: CoreId, addr: Hpa, write: bool) -> ProbeResult {
        self.mmu_access(core, addr, write, LineKind::TlbEntry)
    }

    /// A page-walker PTE fetch: L2 → L3 only.
    pub fn access_page_table(&mut self, core: CoreId, addr: Hpa) -> ProbeResult {
        self.mmu_access(core, addr, false, LineKind::PageTable)
    }

    fn mmu_access(&mut self, core: CoreId, addr: Hpa, write: bool, kind: LineKind) -> ProbeResult {
        let c = core.index();
        // The L2 streamer prefetches the next line of sequential MMU probe
        // streams (TLB set lines for page-adjacent misses) off the critical
        // path.
        if self.config.mmu_next_line_prefetch && kind == LineKind::TlbEntry {
            let next = Hpa::new(addr.line_base().raw() + 64);
            self.l2[c].fill_quiet(next, kind);
            self.l3.fill_quiet(next, kind);
        }
        let mut latency = self.config.l2.latency;
        if self.l2[c].access(addr, write, kind).hit {
            return ProbeResult { level: Level::L2, latency };
        }
        latency += self.config.l3.latency;
        if self.l3.access(addr, write, kind).hit {
            return ProbeResult { level: Level::L3, latency };
        }
        ProbeResult { level: Level::Memory, latency }
    }

    /// Non-disturbing residency check along the MMU probe path (the
    /// requesting core's L2, then the shared L3). Used as the oracle when
    /// training the cache-bypass predictor after a bypassed access — the
    /// hardware equivalent is a snoop that costs nothing on the critical
    /// path.
    pub fn contains_line(&self, core: CoreId, addr: Hpa) -> bool {
        self.l2[core.index()].contains(addr) || self.l3.contains(addr)
    }

    /// Invalidates a line everywhere (TLB shootdown of a cached POM-TLB
    /// line). Returns the number of copies found.
    pub fn invalidate_line(&mut self, addr: Hpa) -> u32 {
        let mut found = 0;
        for cache in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            if cache.invalidate(addr) {
                found += 1;
            }
        }
        if self.l3.invalidate(addr) {
            found += 1;
        }
        found
    }

    /// A core's L1 statistics.
    pub fn l1_stats(&self, core: CoreId) -> &CacheStats {
        self.l1[core.index()].stats()
    }

    /// A core's L2 statistics.
    pub fn l2_stats(&self, core: CoreId) -> &CacheStats {
        self.l2[core.index()].stats()
    }

    /// L2 statistics summed over all cores.
    pub fn l2_stats_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.l2 {
            total.merge(c.stats());
        }
        total
    }

    /// The shared L3's statistics.
    pub fn l3_stats(&self) -> &CacheStats {
        self.l3.stats()
    }

    /// Direct access to a core's L2 model (occupancy reports).
    pub fn l2_cache(&self, core: CoreId) -> &SetAssocCache {
        &self.l2[core.index()]
    }

    /// Direct access to the shared L3 model.
    pub fn l3_cache(&self) -> &SetAssocCache {
        &self.l3
    }

    /// Resets every level's statistics (post-warmup) without flushing.
    pub fn reset_stats(&mut self) {
        for cache in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            cache.reset_stats();
        }
        self.l3.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(cores: usize) -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default(), cores)
    }

    #[test]
    fn data_latencies_accumulate() {
        let mut hier = h(1);
        let core = CoreId(0);
        let addr = Hpa::new(0x1000);
        // Cold: miss everywhere -> 4 + 12 + 42.
        let cold = hier.access_data(core, addr, false);
        assert_eq!(cold.level, Level::Memory);
        assert_eq!(cold.latency, Cycles::new(58));
        // Warm: L1 hit -> 4.
        let warm = hier.access_data(core, addr, false);
        assert_eq!(warm.level, Level::L1);
        assert_eq!(warm.latency, Cycles::new(4));
    }

    #[test]
    fn tlb_probe_skips_l1() {
        let mut hier = h(1);
        let core = CoreId(0);
        let addr = Hpa::new(0x2000);
        let cold = hier.access_tlb_line(core, addr, false);
        assert_eq!(cold.level, Level::Memory);
        assert_eq!(cold.latency, Cycles::new(12 + 42));
        let warm = hier.access_tlb_line(core, addr, false);
        assert_eq!(warm.level, Level::L2);
        assert_eq!(warm.latency, Cycles::new(12));
        // The line never entered L1.
        let data = hier.access_data(core, addr, false);
        assert_eq!(data.level, Level::L2, "TLB line resident in L2, not L1");
    }

    #[test]
    fn fills_propagate_to_all_probed_levels() {
        let mut hier = h(1);
        let core = CoreId(0);
        let addr = Hpa::new(0x3000);
        hier.access_data(core, addr, false);
        // L3 must now hold the line: another core's access hits there.
        let mut hier2cores = h(2);
        hier2cores.access_data(CoreId(0), addr, false);
        let other = hier2cores.access_data(CoreId(1), addr, false);
        assert_eq!(other.level, Level::L3);
        assert_eq!(other.latency, Cycles::new(58));
    }

    #[test]
    fn per_core_l1_l2_are_private() {
        let mut hier = h(2);
        let addr = Hpa::new(0x4000);
        hier.access_data(CoreId(0), addr, false);
        assert_eq!(hier.l1_stats(CoreId(1)).total_misses(), 0);
        assert_eq!(hier.l2_stats(CoreId(1)).total_misses(), 0);
    }

    #[test]
    fn page_table_lines_tagged() {
        let mut hier = h(1);
        hier.access_page_table(CoreId(0), Hpa::new(0x5000));
        assert_eq!(hier.l3_cache().occupancy(LineKind::PageTable), 1);
        assert_eq!(hier.l2_cache(CoreId(0)).occupancy(LineKind::PageTable), 1);
    }

    #[test]
    fn mmu_prefetch_covers_next_line() {
        let mut hier = h(1);
        let addr = Hpa::new(0x9000);
        hier.access_tlb_line(CoreId(0), addr, false);
        // The sequential next set line was prefetched: it now hits in L2.
        let next = hier.access_tlb_line(CoreId(0), Hpa::new(0x9040), false);
        assert_eq!(next.level, Level::L2);
        // Prefetching can be disabled.
        let cfg = HierarchyConfig { mmu_next_line_prefetch: false, ..Default::default() };
        let mut plain = Hierarchy::new(cfg, 1);
        plain.access_tlb_line(CoreId(0), addr, false);
        let cold = plain.access_tlb_line(CoreId(0), Hpa::new(0x9040), false);
        assert_eq!(cold.level, Level::Memory);
    }

    #[test]
    fn shootdown_invalidates_all_levels() {
        let mut hier = h(2);
        let addr = Hpa::new(0x6000);
        hier.access_tlb_line(CoreId(0), addr, false); // L2(0) + L3
        hier.access_tlb_line(CoreId(1), addr, false); // L2(1) + L3 hit
        let found = hier.invalidate_line(addr);
        assert_eq!(found, 3, "two private L2 copies plus L3");
        let after = hier.access_tlb_line(CoreId(0), addr, false);
        assert_eq!(after.level, Level::Memory);
    }

    #[test]
    fn shootdown_scrubs_dirty_lines_from_all_three_levels() {
        let mut hier = h(2);
        let addr = Hpa::new(0x7000);
        // A store allocates the line dirty in L1, L2 and L3 of core 0...
        hier.access_data(CoreId(0), addr, true);
        // ...and a clean copy lands in core 1's L1/L2 (L3 hit stops there).
        hier.access_data(CoreId(1), addr, false);
        assert!(hier.contains_line(CoreId(0), addr));
        let found = hier.invalidate_line(addr);
        assert_eq!(found, 5, "both L1s, both L2s, and the L3 held copies");
        assert!(!hier.contains_line(CoreId(0), addr));
        assert!(!hier.contains_line(CoreId(1), addr));
        let after = hier.access_data(CoreId(0), addr, false);
        assert_eq!(after.level, Level::Memory, "dirty copies must not survive");
        assert_eq!(hier.invalidate_line(addr.wrapping_add(0x40)), 0, "other lines untouched");
    }

    #[test]
    fn l2_total_sums_cores() {
        let mut hier = h(2);
        hier.access_data(CoreId(0), Hpa::new(0x100), false);
        hier.access_data(CoreId(1), Hpa::new(0x200), false);
        let total = hier.l2_stats_total();
        assert_eq!(total.total_misses(), 2);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut hier = h(1);
        let addr = Hpa::new(0x7000);
        hier.access_data(CoreId(0), addr, false);
        hier.reset_stats();
        assert_eq!(hier.l3_stats().total_misses(), 0);
        let warm = hier.access_data(CoreId(0), addr, false);
        assert_eq!(warm.level, Level::L1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn rejects_zero_cores() {
        h(0);
    }

    #[test]
    fn tlb_write_dirties_line() {
        let mut hier = h(1);
        let addr = Hpa::new(0x8000);
        hier.access_tlb_line(CoreId(0), addr, true);
        // The probed line is resident (plus the streamer's next-line
        // prefetch).
        assert_eq!(hier.l2_cache(CoreId(0)).occupancy(LineKind::TlbEntry), 2);
        assert!(hier.contains_line(CoreId(0), addr));
    }
}
