//! Per-kind cache statistics.

use serde::{Deserialize, Serialize};

use crate::set_assoc::LineKind;

/// Hit/miss/eviction counters for one [`LineKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStats {
    /// Accesses that found the line resident.
    pub hits: u64,
    /// Accesses that filled the line.
    pub misses: u64,
    /// Lines of this kind displaced by any fill.
    pub evictions: u64,
    /// Dirty lines of this kind displaced (write-back traffic).
    pub dirty_evictions: u64,
}

impl KindStats {
    /// Hit rate in [0, 1]; zero if there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Statistics for one cache, split by content kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    data: KindStats,
    tlb: KindStats,
    page_table: KindStats,
}

impl CacheStats {
    /// Counters for one kind.
    pub fn kind(&self, kind: LineKind) -> &KindStats {
        match kind {
            LineKind::Data => &self.data,
            LineKind::TlbEntry => &self.tlb,
            LineKind::PageTable => &self.page_table,
        }
    }

    fn kind_mut(&mut self, kind: LineKind) -> &mut KindStats {
        match kind {
            LineKind::Data => &mut self.data,
            LineKind::TlbEntry => &mut self.tlb,
            LineKind::PageTable => &mut self.page_table,
        }
    }

    /// Records a hit or a filling miss.
    pub fn record(&mut self, kind: LineKind, hit: bool) {
        let k = self.kind_mut(kind);
        if hit {
            k.hits += 1;
        } else {
            k.misses += 1;
        }
    }

    /// Records an eviction of a resident line.
    pub fn record_eviction(&mut self, kind: LineKind, dirty: bool) {
        let k = self.kind_mut(kind);
        k.evictions += 1;
        if dirty {
            k.dirty_evictions += 1;
        }
    }

    /// Hits across all kinds.
    pub fn total_hits(&self) -> u64 {
        self.data.hits + self.tlb.hits + self.page_table.hits
    }

    /// Misses across all kinds.
    pub fn total_misses(&self) -> u64 {
        self.data.misses + self.tlb.misses + self.page_table.misses
    }

    /// Overall hit rate; zero with no accesses.
    pub fn overall_hit_rate(&self) -> f64 {
        let total = self.total_hits() + self.total_misses();
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }

    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        for kind in [LineKind::Data, LineKind::TlbEntry, LineKind::PageTable] {
            let o = *other.kind(kind);
            let k = self.kind_mut(kind);
            k.hits += o.hits;
            k.misses += o.misses;
            k.evictions += o.evictions;
            k.dirty_evictions += o.dirty_evictions;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kind_isolation() {
        let mut s = CacheStats::default();
        s.record(LineKind::Data, true);
        s.record(LineKind::TlbEntry, false);
        assert_eq!(s.kind(LineKind::Data).hits, 1);
        assert_eq!(s.kind(LineKind::Data).misses, 0);
        assert_eq!(s.kind(LineKind::TlbEntry).misses, 1);
        assert_eq!(s.kind(LineKind::PageTable).hits, 0);
    }

    #[test]
    fn hit_rates() {
        let mut s = CacheStats::default();
        for _ in 0..3 {
            s.record(LineKind::TlbEntry, true);
        }
        s.record(LineKind::TlbEntry, false);
        assert_eq!(s.kind(LineKind::TlbEntry).hit_rate(), 0.75);
        assert_eq!(s.overall_hit_rate(), 0.75);
        assert_eq!(KindStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn eviction_counters() {
        let mut s = CacheStats::default();
        s.record_eviction(LineKind::Data, true);
        s.record_eviction(LineKind::Data, false);
        assert_eq!(s.kind(LineKind::Data).evictions, 2);
        assert_eq!(s.kind(LineKind::Data).dirty_evictions, 1);
    }

    #[test]
    fn merge_sums_all_kinds() {
        let mut a = CacheStats::default();
        a.record(LineKind::Data, true);
        let mut b = CacheStats::default();
        b.record(LineKind::TlbEntry, false);
        b.record_eviction(LineKind::PageTable, true);
        a.merge(&b);
        assert_eq!(a.total_hits(), 1);
        assert_eq!(a.total_misses(), 1);
        assert_eq!(a.kind(LineKind::PageTable).dirty_evictions, 1);
    }
}
