//! # pomtlb-serve: the long-lived sweep service
//!
//! Every CLI invocation before this crate paid the same warm-up taxes:
//! generate (or load) the input streams, build the simulators, run the
//! batch — then throw all of it away. The serve crate keeps that state
//! alive. A [`Service`] is a daemon-shaped object that accepts sim,
//! compare, consolidation and fault-sweep requests as JSON lines (over
//! stdin, a Unix socket, or a hardened TCP listener), keeps one warm [`pomtlb_trace::TraceStore`] handle and one
//! worker-pool policy across requests, and answers *repeated* requests
//! from a second content-addressed store: the [`ReportStore`], which
//! memoizes finished response bodies keyed by [`request_digest`] — the
//! shared 4-lane splitmix digest over the trace key plus every
//! configuration dimension that can change the result.
//!
//! The memoization contract, end to end:
//!
//! * **Key** — [`request_digest`] of the resolved request
//!   ([`ServeRequest::resolve`]); request ids are not part of it.
//! * **Value** — the canonical JSON response body, stored byte-exact in
//!   the checksummed POMREP1 format and spliced back verbatim, so a
//!   memoized response is *byte-identical* to the computed one.
//! * **Provenance** — every response line says which tier answered:
//!   `"computed"`, `"memoized"` (disk store), `"hot"` (the in-memory
//!   [`HotCache`] in front of the disk tier), or `"coalesced"` (spliced
//!   from an identical request already in flight via [`SingleFlight`]);
//!   `stats` exposes every tier's counters.
//! * **Invalidation** — fault-injected runs are never memoized; any
//!   defective on-disk entry warns, misses, and is recomputed
//!   (strict warn-and-recompute, never a wrong answer).
//!
//! Since PR 8 the daemon is concurrent end to end: [`Service`] is a
//! cheap per-connection handle onto one shared warm core
//! ([`ServiceShared`]), the Unix-socket transport runs one handler
//! thread per connection (bounded by `max_connections`), and an
//! admission gate in front of the worker pool answers overload with a
//! typed `busy` line instead of convoying every conversation.
//!
//! Since PR 10 both socket transports share one hardened connection
//! loop ([`serve_tcp`] / [`serve_unix`] over `serve_conn`): bounded
//! request-line reads (`max_line_bytes`), idle timeouts measured from
//! the last *completed* request, per-request compute deadlines
//! answering typed `deadline_exceeded` lines, and graceful drain that
//! persists tier counters exactly once. The [`Client`] speaks the same
//! protocol with capped seeded-jitter backoff and digest-keyed
//! idempotent retries, and the deterministic [`ChaosProxy`] injects
//! seeded resets / torn writes / stalls for failure rehearsal.
//!
//! See `DESIGN.md` §10 and §12 for the architecture discussion and the
//! CLI's `pomtlb serve` / `pomtlb client` / `pomtlb chaos-proxy` /
//! `pomtlb report-store` commands for the operator surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod client;
mod flight;
mod hot_cache;
mod report_store;
mod request;
mod service;
mod tiers;
mod transport;

pub use flight::{FlightFailure, FlightFollower, FlightLeader, FlightResult, Joined, SingleFlight};
pub use hot_cache::{HotCache, HotCacheCounters, DEFAULT_HOT_MAX_BYTES};
pub use report_store::{
    ReportCounters, ReportEntry, ReportGcReport, ReportStore, ReportVerifyEntry,
    DEFAULT_REPORT_MAX_BYTES, REPORT_FORMAT_VERSION,
};
pub use request::{
    request_bytes, request_digest, RequestKind, ResolvedRequest, RowMeta, ServeRequest,
    TenantParams, REQUEST_DIGEST_VERSION,
};
pub use chaos::{ChaosConfig, ChaosCounters, ChaosProxy};
pub use client::{Client, ClientConfig, ClientCounters, ClientError};
pub use service::{
    serve_io, serve_stdin, ServeConfig, Service, ServiceCounters, ServiceShared,
    DEFAULT_DRAIN_TIMEOUT_SECS, DEFAULT_MAX_CONNECTIONS, DEFAULT_MAX_LINE_BYTES,
    DEFAULT_MAX_QUEUE,
};
pub use tiers::{TierSnapshot, SERVE_COUNTERS_FILE};
pub use transport::{bind_tcp_listener, serve_tcp};

#[cfg(unix)]
pub use transport::{bind_unix_listener, serve_unix};
