//! Persisted serve-tier counters, for operators without a live socket.
//!
//! `pomtlb report-store stats` runs in a *separate process* from the
//! daemon, so it can see the on-disk store but not the daemon's in-memory
//! tiers (hot cache, single-flight table, admission gate). The daemon
//! therefore drops a tiny snapshot file, [`SERVE_COUNTERS_FILE`], into
//! the report directory whenever it serves a `stats` request, shuts down,
//! or closes the socket loop — and the CLI folds it into `report-store
//! stats` output so tier hit ratios are visible without parsing perf
//! JSON.
//!
//! The format is the store's own dependency-free dialect: a versioned
//! header line, then `key<TAB>value` rows, written tmp-then-rename like
//! every other artifact in the store directory. Readers ignore unknown
//! keys and treat missing ones as zero, so the snapshot can grow fields
//! without a version bump; a malformed file reads as `None` (the snapshot
//! is an observability aid, never load-bearing state).

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// File name of the snapshot inside the report directory.
pub const SERVE_COUNTERS_FILE: &str = "serve_counters.tsv";

/// Header line identifying the snapshot format.
const SNAPSHOT_HEADER: &str = "pomtlb-serve-counters\t1";

/// A point-in-time copy of the daemon's tier counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Requests answered by running simulations.
    pub computed: u64,
    /// Requests answered from the on-disk report store.
    pub memoized: u64,
    /// Requests answered from the in-memory hot cache.
    pub hot: u64,
    /// Requests answered by splicing another request's in-flight result.
    pub coalesced: u64,
    /// Requests turned away with a typed busy response.
    pub busy: u64,
    /// Requests answered with an error line.
    pub errors: u64,
    /// Requests answered with a typed `deadline_exceeded` line.
    pub deadlines: u64,
    /// Hot-cache probe hits.
    pub hot_hits: u64,
    /// Hot-cache probe misses.
    pub hot_misses: u64,
    /// Hot-cache evictions.
    pub hot_evictions: u64,
    /// Bytes resident in the hot cache at snapshot time.
    pub hot_bytes: u64,
    /// Hot-cache byte budget (0 = tier disabled).
    pub hot_max_bytes: u64,
    /// Callers that became single-flight leaders.
    pub flights_led: u64,
    /// Callers that coalesced onto another caller's flight.
    pub flights_coalesced: u64,
    /// Compute permits granted by admission control.
    pub admitted: u64,
    /// Compute requests rejected by admission control.
    pub rejected: u64,
}

impl TierSnapshot {
    fn fields(&self) -> [(&'static str, u64); 16] {
        [
            ("computed", self.computed),
            ("memoized", self.memoized),
            ("hot", self.hot),
            ("coalesced", self.coalesced),
            ("busy", self.busy),
            ("errors", self.errors),
            ("deadlines", self.deadlines),
            ("hot_hits", self.hot_hits),
            ("hot_misses", self.hot_misses),
            ("hot_evictions", self.hot_evictions),
            ("hot_bytes", self.hot_bytes),
            ("hot_max_bytes", self.hot_max_bytes),
            ("flights_led", self.flights_led),
            ("flights_coalesced", self.flights_coalesced),
            ("admitted", self.admitted),
            ("rejected", self.rejected),
        ]
    }

    fn set(&mut self, key: &str, value: u64) {
        match key {
            "computed" => self.computed = value,
            "memoized" => self.memoized = value,
            "hot" => self.hot = value,
            "coalesced" => self.coalesced = value,
            "busy" => self.busy = value,
            "errors" => self.errors = value,
            "deadlines" => self.deadlines = value,
            "hot_hits" => self.hot_hits = value,
            "hot_misses" => self.hot_misses = value,
            "hot_evictions" => self.hot_evictions = value,
            "hot_bytes" => self.hot_bytes = value,
            "hot_max_bytes" => self.hot_max_bytes = value,
            "flights_led" => self.flights_led = value,
            "flights_coalesced" => self.flights_coalesced = value,
            "admitted" => self.admitted = value,
            "rejected" => self.rejected = value,
            _ => {} // Unknown keys are future fields; ignore.
        }
    }

    /// Writes the snapshot into `dir` (tmp-then-rename, so readers never
    /// see a torn file).
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let mut text = String::with_capacity(512);
        text.push_str(SNAPSHOT_HEADER);
        text.push('\n');
        for (key, value) in self.fields() {
            text.push_str(key);
            text.push('\t');
            text.push_str(&value.to_string());
            text.push('\n');
        }
        let tmp = dir.join(format!("{SERVE_COUNTERS_FILE}.tmp.{}", std::process::id()));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, dir.join(SERVE_COUNTERS_FILE))
    }

    /// Reads the snapshot from `dir`; `None` if absent or malformed.
    pub fn load(dir: &Path) -> Option<TierSnapshot> {
        let text = fs::read_to_string(dir.join(SERVE_COUNTERS_FILE)).ok()?;
        let mut lines = text.lines();
        if lines.next()? != SNAPSHOT_HEADER {
            return None;
        }
        let mut snapshot = TierSnapshot::default();
        for line in lines {
            let (key, value) = line.split_once('\t')?;
            snapshot.set(key, value.parse().ok()?);
        }
        Some(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("pomtlb-tiers-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn snapshot_round_trips_every_field() {
        let dir = TempDir::new("roundtrip");
        let mut snapshot = TierSnapshot::default();
        for (i, (key, _)) in snapshot.clone().fields().iter().enumerate() {
            snapshot.set(key, (i as u64 + 1) * 10);
        }
        snapshot.save(&dir.0).expect("save");
        assert_eq!(TierSnapshot::load(&dir.0), Some(snapshot));
    }

    #[test]
    fn missing_and_malformed_files_read_as_none() {
        let dir = TempDir::new("malformed");
        assert_eq!(TierSnapshot::load(&dir.0), None);
        fs::write(dir.0.join(SERVE_COUNTERS_FILE), "not the header\nhot\t3\n")
            .expect("write");
        assert_eq!(TierSnapshot::load(&dir.0), None);
    }

    #[test]
    fn unknown_keys_are_ignored_missing_keys_are_zero() {
        let dir = TempDir::new("forward");
        fs::write(
            dir.0.join(SERVE_COUNTERS_FILE),
            format!("{SNAPSHOT_HEADER}\nhot\t7\nsome_future_field\t9\n"),
        )
        .expect("write");
        let snapshot = TierSnapshot::load(&dir.0).expect("loads");
        assert_eq!(snapshot.hot, 7);
        assert_eq!(snapshot.computed, 0);
    }
}
