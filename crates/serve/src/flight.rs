//! Single-flight deduplication of identical in-flight requests.
//!
//! Two clients asking the same question at the same instant should cost
//! one computation. [`SingleFlight::join`] is the rendezvous: the first
//! caller for a given [`request_digest`](crate::request_digest) becomes
//! the **leader** and computes; every later caller arriving while that
//! flight is open becomes a **follower** and parks until the leader
//! [publishes](FlightLeader::publish). Followers receive the leader's
//! result *by clone of the exact body string*, so a coalesced response is
//! byte-identical to the led one — the same splice-verbatim contract the
//! report store keeps on disk.
//!
//! Failure is part of the protocol: a leader that unwinds (or returns
//! early) without publishing still resolves the flight, with
//! [`FlightFailure::Abandoned`] — a follower can never hang on a dead
//! leader, because publication lives in [`Drop`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Why a flight produced no body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightFailure {
    /// The leader was refused by admission control; depths as observed.
    Busy {
        /// Compute permits out when the leader was refused.
        in_flight: usize,
        /// Admission waiters parked when the leader was refused.
        queued: usize,
    },
    /// The leader computed and failed; the message it reported.
    Error(String),
    /// The leader's compute blew the per-request deadline; followers
    /// replay the same typed `deadline_exceeded` response.
    DeadlineExceeded,
    /// The leader unwound or dropped without publishing.
    Abandoned,
}

/// What a flight resolves to: the exact response body, or a typed failure
/// every follower replays.
pub type FlightResult = Result<String, FlightFailure>;

#[derive(Debug, Default)]
struct FlightSlot {
    result: Option<FlightResult>,
}

#[derive(Debug, Default)]
struct Flight {
    slot: Mutex<FlightSlot>,
    published: Condvar,
}

fn lock_slot<'a>(m: &'a Mutex<FlightSlot>) -> MutexGuard<'a, FlightSlot> {
    // The only write under this lock is the single publication store.
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// The in-flight request table: one open flight per request digest.
#[derive(Debug, Default)]
pub struct SingleFlight {
    open: Mutex<HashMap<[u8; 32], Arc<Flight>>>,
    led: AtomicU64,
    coalesced: AtomicU64,
}

/// What [`SingleFlight::join`] made of the caller.
#[derive(Debug)]
pub enum Joined<'a> {
    /// First caller for this digest: compute, then publish.
    Leader(FlightLeader<'a>),
    /// A flight is already open: wait for the leader's result.
    Follower(FlightFollower),
}

impl SingleFlight {
    /// An empty table.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Joins the flight for `digest`, opening it if absent. Exactly one
    /// concurrent caller per digest becomes the leader.
    pub fn join(&self, digest: [u8; 32]) -> Joined<'_> {
        let mut open = self
            .open
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if let Some(flight) = open.get(&digest) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return Joined::Follower(FlightFollower { flight: Arc::clone(flight) });
        }
        let flight = Arc::new(Flight::default());
        open.insert(digest, Arc::clone(&flight));
        self.led.fetch_add(1, Ordering::Relaxed);
        Joined::Leader(FlightLeader { table: self, digest, flight, published: false })
    }

    /// Flights currently open (leaders that have not yet published).
    pub fn in_flight(&self) -> usize {
        self.open
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .len()
    }

    /// Callers that became leaders, cumulatively.
    pub fn led(&self) -> u64 {
        self.led.load(Ordering::Relaxed)
    }

    /// Callers that became followers, cumulatively.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    fn resolve(&self, digest: &[u8; 32], flight: &Arc<Flight>, result: FlightResult) {
        // Close the flight first: a caller arriving after this point opens
        // a fresh one (and will typically hit the hot cache instead).
        self.open
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .remove(digest);
        lock_slot(&flight.slot).result = Some(result);
        flight.published.notify_all();
    }
}

/// The leader's half of an open flight: publish exactly once; dropping
/// unpublished resolves the flight as [`FlightFailure::Abandoned`].
#[derive(Debug)]
pub struct FlightLeader<'a> {
    table: &'a SingleFlight,
    digest: [u8; 32],
    flight: Arc<Flight>,
    published: bool,
}

impl FlightLeader<'_> {
    /// Resolves the flight: every parked follower wakes with a clone of
    /// `result`, and the digest is free for a new flight.
    pub fn publish(mut self, result: FlightResult) {
        self.published = true;
        self.table.resolve(&self.digest, &self.flight, result);
    }
}

impl Drop for FlightLeader<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.table
                .resolve(&self.digest, &self.flight, Err(FlightFailure::Abandoned));
        }
    }
}

/// The follower's half: park until the leader publishes.
#[derive(Debug)]
pub struct FlightFollower {
    flight: Arc<Flight>,
}

impl FlightFollower {
    /// Blocks until the flight resolves; returns a clone of the leader's
    /// result.
    pub fn wait(self) -> FlightResult {
        let mut slot = lock_slot(&self.flight.slot);
        loop {
            if let Some(result) = &slot.result {
                return result.clone();
            }
            slot = self
                .flight
                .published
                .wait(slot)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(tag: u8) -> [u8; 32] {
        [tag; 32]
    }

    #[test]
    fn first_caller_leads_second_follows_and_gets_the_same_body() {
        let table = SingleFlight::new();
        let leader = match table.join(digest(1)) {
            Joined::Leader(l) => l,
            Joined::Follower(_) => panic!("first caller must lead"),
        };
        let follower = match table.join(digest(1)) {
            Joined::Follower(f) => f,
            Joined::Leader(_) => panic!("second caller must follow"),
        };
        assert_eq!(table.in_flight(), 1);
        leader.publish(Ok("{\"body\":42}".to_string()));
        assert_eq!(follower.wait(), Ok("{\"body\":42}".to_string()));
        assert_eq!(table.in_flight(), 0);
        assert_eq!((table.led(), table.coalesced()), (1, 1));
    }

    #[test]
    fn distinct_digests_fly_independently() {
        let table = SingleFlight::new();
        let a = table.join(digest(1));
        let b = table.join(digest(2));
        assert!(matches!(a, Joined::Leader(_)));
        assert!(matches!(b, Joined::Leader(_)));
        assert_eq!(table.in_flight(), 2);
    }

    #[test]
    fn publishing_reopens_the_digest_for_a_fresh_flight() {
        let table = SingleFlight::new();
        match table.join(digest(7)) {
            Joined::Leader(l) => l.publish(Ok("x".to_string())),
            Joined::Follower(_) => panic!("lead"),
        }
        assert!(matches!(table.join(digest(7)), Joined::Leader(_)));
    }

    #[test]
    fn dropped_leader_resolves_followers_as_abandoned() {
        let table = SingleFlight::new();
        let leader = match table.join(digest(3)) {
            Joined::Leader(l) => l,
            Joined::Follower(_) => panic!("lead"),
        };
        let follower = match table.join(digest(3)) {
            Joined::Follower(f) => f,
            Joined::Leader(_) => panic!("follow"),
        };
        drop(leader);
        assert_eq!(follower.wait(), Err(FlightFailure::Abandoned));
        assert_eq!(table.in_flight(), 0, "abandoned flight is closed");
    }

    #[test]
    fn parked_followers_wake_with_the_published_result() {
        let table = SingleFlight::new();
        let leader = match table.join(digest(9)) {
            Joined::Leader(l) => l,
            Joined::Follower(_) => panic!("lead"),
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let follower = match table.join(digest(9)) {
                        Joined::Follower(f) => f,
                        Joined::Leader(_) => panic!("follow"),
                    };
                    scope.spawn(move || follower.wait())
                })
                .collect();
            leader.publish(Ok("shared".to_string()));
            for handle in handles {
                assert_eq!(handle.join().expect("follower"), Ok("shared".to_string()));
            }
        });
        assert_eq!(table.coalesced(), 4);
    }
}
