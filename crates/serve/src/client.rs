//! A resilient TCP client for the serve protocol.
//!
//! The daemon's caching contract makes retries *safe*: a request's
//! identity is its [`request_digest`](crate::request_digest) — ids are
//! not hashed — and every tier splices the stored body back verbatim, so
//! re-sending a request whose first attempt died mid-connection either
//! recomputes deterministically or hits a cache, and the body is
//! byte-identical either way. [`Client`] leans on that: it reconnects on
//! torn connections, retries typed `busy` and `deadline_exceeded`
//! refusals with capped exponential backoff (deterministic seeded
//! jitter, so two clients with different seeds never thundering-herd in
//! lockstep), spans all attempts with one optional deadline budget, and
//! *asserts* the idempotency claim — a retried request that ever returns
//! a body different from an earlier reply for the same digest is a
//! protocol violation reported as [`ClientError::Inconsistent`], never
//! silently accepted.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::request::{request_digest, ServeRequest};

/// Ceiling on one connect attempt, independent of the request budget.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Read timeout when no request deadline is set: generous enough for a
/// cold compute, finite so a dead daemon cannot park the client forever.
const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(300);

/// How [`Client`] connects and retries.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon address, `host:port`.
    pub addr: String,
    /// Total budget spanning *all* attempts of one request (`None` =
    /// retry until `max_retries` is spent).
    pub deadline: Option<Duration>,
    /// Retries after the first attempt (io errors, `busy`,
    /// `deadline_exceeded`); other error responses are final answers.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Jitter seed: backoff delays are deterministic per (seed, request,
    /// attempt), so runs are reproducible and distinct seeds decorrelate.
    pub seed: u64,
}

impl ClientConfig {
    /// Defaults tuned for a loopback daemon: 8 retries, 25 ms base,
    /// 1 s cap, no overall deadline.
    pub fn new(addr: impl Into<String>) -> ClientConfig {
        ClientConfig {
            addr: addr.into(),
            deadline: None,
            max_retries: 8,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            seed: 0x5eed,
        }
    }
}

/// What the client did, cumulatively.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Requests submitted via [`Client::request`].
    pub requests: u64,
    /// Wire attempts, including the first of each request.
    pub attempts: u64,
    /// TCP (re)connects performed.
    pub connects: u64,
    /// Retries triggered by transport errors (torn connections, EOF).
    pub io_retries: u64,
    /// Retries triggered by typed `busy` refusals.
    pub busy_retries: u64,
    /// Retries triggered by typed `deadline_exceeded` refusals.
    pub deadline_retries: u64,
    /// Responses whose body was checked byte-identical against an
    /// earlier reply for the same request digest.
    pub identity_checks: u64,
}

/// Why a request produced no response line.
#[derive(Debug)]
pub enum ClientError {
    /// The retry or deadline budget ran out; `last` describes the final
    /// refusal or transport error.
    Exhausted {
        /// Wire attempts made.
        attempts: u32,
        /// The last refusal line or transport error text.
        last: String,
    },
    /// Two completed replies for the same request digest differed — the
    /// daemon broke the byte-identity contract retries rely on.
    Inconsistent {
        /// Hex digest of the request whose replies diverged.
        digest: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempt(s); last: {last}")
            }
            ClientError::Inconsistent { digest } => {
                write!(f, "byte-identity violation: replies for digest {digest} diverged")
            }
        }
    }
}

impl std::error::Error for ClientError {}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Extracts the verbatim `body` slice of an ok response line — the part
/// every tier splices byte-exactly (provenance and wall time legitimately
/// vary across attempts, the body must not).
fn body_slice(response: &str) -> Option<&str> {
    let idx = response.find("\"body\":")?;
    let end = response.len().checked_sub(1)?;
    response.get(idx + "\"body\":".len()..end)
}

/// A serve-protocol client with reconnect, bounded retry, and the
/// byte-identity assertion. One client is one conversation: requests are
/// serial (send a line, read a line), which is exactly the daemon's
/// framing.
#[derive(Debug)]
pub struct Client {
    cfg: ClientConfig,
    stream: Option<TcpStream>,
    rxbuf: Vec<u8>,
    counters: ClientCounters,
    seen: HashMap<[u8; 32], String>,
    seq: u64,
}

impl Client {
    /// A client for `cfg.addr`; connects lazily on the first request.
    pub fn new(cfg: ClientConfig) -> Client {
        Client {
            cfg,
            stream: None,
            rxbuf: Vec::new(),
            counters: ClientCounters::default(),
            seen: HashMap::new(),
            seq: 0,
        }
    }

    /// Cumulative counters.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// Sends one request line and returns the daemon's response line,
    /// retrying transport errors and typed `busy`/`deadline_exceeded`
    /// refusals with capped, jittered exponential backoff inside the
    /// configured deadline. Error *responses* (`ok:false` without a
    /// retryable marker) are answers, not failures — they come back `Ok`.
    pub fn request(&mut self, line: &str) -> Result<String, ClientError> {
        let started = Instant::now();
        self.seq += 1;
        self.counters.requests += 1;
        // The digest is the retry-safety key: only requests that resolve
        // and memoize have the byte-identity guarantee to assert.
        let digest = serde_json::from_str::<ServeRequest>(line)
            .ok()
            .and_then(|req| req.resolve().ok())
            .filter(|resolved| resolved.memoize)
            .map(|resolved| request_digest(&resolved));
        let mut attempts = 0u32;
        let mut last = String::from("never attempted");
        loop {
            if attempts > self.cfg.max_retries {
                return Err(ClientError::Exhausted { attempts, last });
            }
            let remaining = match self.remaining(&started) {
                Some(r) if r < Duration::from_millis(1) => {
                    return Err(ClientError::Exhausted { attempts, last });
                }
                r => r,
            };
            attempts += 1;
            self.counters.attempts += 1;
            match self.attempt(line, remaining) {
                Ok(response) => {
                    if response.contains("\"busy\":true") {
                        self.counters.busy_retries += 1;
                        last = response;
                    } else if response.contains("\"deadline_exceeded\":true") {
                        self.counters.deadline_retries += 1;
                        last = response;
                    } else {
                        if let Some(digest) = digest {
                            if response.contains("\"ok\":true") {
                                self.check_identity(digest, &response)?;
                            }
                        }
                        return Ok(response);
                    }
                }
                Err(e) => {
                    // A torn connection poisons any buffered partial
                    // response; drop both and reconnect on the retry.
                    self.stream = None;
                    self.rxbuf.clear();
                    self.counters.io_retries += 1;
                    last = format!("transport error: {e}");
                }
            }
            self.backoff(attempts, &started);
        }
    }

    /// Asserts the byte-identity contract for a completed reply.
    fn check_identity(&mut self, digest: [u8; 32], response: &str) -> Result<(), ClientError> {
        let Some(body) = body_slice(response) else { return Ok(()) };
        match self.seen.get(&digest) {
            Some(expected) if expected != body => Err(ClientError::Inconsistent {
                digest: pomtlb_trace::digest::digest_hex(&digest),
            }),
            Some(_) => {
                self.counters.identity_checks += 1;
                Ok(())
            }
            None => {
                self.seen.insert(digest, body.to_string());
                Ok(())
            }
        }
    }

    fn remaining(&self, started: &Instant) -> Option<Duration> {
        self.cfg.deadline.map(|d| d.saturating_sub(started.elapsed()))
    }

    /// Capped exponential backoff with deterministic jitter in
    /// [0.5, 1.0): delay for retry `n` is
    /// `min(cap, base * 2^(n-1)) * jitter(seed, request, n)`.
    fn backoff(&self, attempts: u32, started: &Instant) {
        let exp = attempts.saturating_sub(1).min(20);
        let raw = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.cfg.backoff_cap);
        let noise = splitmix64(self.cfg.seed ^ (self.seq << 20) ^ u64::from(attempts));
        let jitter = 0.5 + ((noise >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
        let mut delay = raw.mul_f64(jitter);
        if let Some(remaining) = self.remaining(started) {
            delay = delay.min(remaining);
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    fn connect(&mut self, remaining: Option<Duration>) -> io::Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let addr: SocketAddr = self
            .cfg
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("`{}` resolves to no address", self.cfg.addr),
                )
            })?;
        let timeout = remaining
            .unwrap_or(CONNECT_TIMEOUT)
            .min(CONNECT_TIMEOUT)
            .max(Duration::from_millis(1));
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        let _ = stream.set_nodelay(true);
        self.rxbuf.clear();
        self.counters.connects += 1;
        self.stream = Some(stream);
        Ok(())
    }

    /// One wire attempt: write the line, read one response line.
    fn attempt(&mut self, line: &str, remaining: Option<Duration>) -> io::Result<String> {
        self.connect(remaining)?;
        let io_budget = remaining
            .unwrap_or(DEFAULT_READ_TIMEOUT)
            .min(DEFAULT_READ_TIMEOUT)
            .max(Duration::from_millis(1));
        let stream = self.stream.as_mut().expect("connected above");
        stream.set_write_timeout(Some(io_budget))?;
        stream.set_read_timeout(Some(io_budget))?;
        // One wire write per request: split writes would invite Nagle +
        // delayed-ACK stalls if nodelay ever failed, and cost a syscall.
        let mut wire = line.trim_end().as_bytes().to_vec();
        wire.push(b'\n');
        stream.write_all(&wire)?;
        stream.flush()?;
        loop {
            if let Some(pos) = self.rxbuf.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = self.rxbuf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&raw[..raw.len() - 1]).into_owned();
                return Ok(text);
            }
            let mut chunk = [0u8; 4096];
            let stream = self.stream.as_mut().expect("connected above");
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a response line arrived",
                ));
            }
            self.rxbuf.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_slice_extracts_the_verbatim_splice() {
        let line = "{\"id\":\"a\",\"ok\":true,\"provenance\":\"hot\",\"wall_ms\":1,\
                    \"body\":{\"kind\":\"sim\",\"rows\":[1,2]}}";
        assert_eq!(body_slice(line), Some("{\"kind\":\"sim\",\"rows\":[1,2]}"));
        assert_eq!(body_slice("{\"ok\":false}"), None);
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_attempt() {
        // Same inputs, same jitter — reproducibility is the point.
        let a = splitmix64(42 ^ (3 << 20) ^ 2);
        let b = splitmix64(42 ^ (3 << 20) ^ 2);
        assert_eq!(a, b);
        assert_ne!(a, splitmix64(43 ^ (3 << 20) ^ 2), "seeds decorrelate");
    }

    #[test]
    fn exhausted_connect_refused_reports_transport_error() {
        // Port 1 on loopback is essentially never listening.
        let cfg = ClientConfig {
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            deadline: Some(Duration::from_secs(2)),
            ..ClientConfig::new("127.0.0.1:1")
        };
        let mut client = Client::new(cfg);
        let err = client
            .request("{\"id\":\"x\",\"kind\":\"ping\"}")
            .expect_err("nothing listens on port 1");
        let ClientError::Exhausted { attempts, last } = err else {
            panic!("expected Exhausted, got {err:?}");
        };
        assert_eq!(attempts, 2, "first attempt + one retry");
        assert!(last.contains("transport error"), "{last}");
        assert_eq!(client.counters().io_retries, 2);
    }
}
