//! A persistent, content-addressed store of memoized serve responses.
//!
//! The trace store (PR 4) removed redundant *generator* passes across
//! invocations; every finished `SimReport` still died with its process. The
//! report store closes that gap for the serve daemon: the canonical
//! response body of a completed request is spilled to disk in the
//! checksummed POMREP1 format, addressed by the request digest
//! ([`crate::request_digest`]), so a repeated identical request — same
//! TraceKey, same hardware/run configuration — is a disk read, not a
//! simulation.
//!
//! # Layout on disk
//!
//! ```text
//! <root>/
//!   <64-hex-char request digest>.pomrep   one memoized body each (POMREP1)
//!   manifest.tsv                          advisory index: sizes, LRU stamps
//! ```
//!
//! One POMREP1 file (all integers little-endian):
//!
//! ```text
//! offset size
//! 0      8   magic "POMREP1\n"
//! 8      4   format version (1)
//! 12     32  request digest (must match the file stem's hex)
//! 44     8   payload length in bytes
//! 52     8   FNV-1a 64 checksum of the payload
//! 60     8   FNV-1a 64 checksum of header bytes [0, 60)
//! 68         payload: the canonical JSON response body, byte-exact
//! ```
//!
//! Files are written to a tmp name and atomically renamed, so readers
//! never observe a half-written entry. The manifest is *advisory* exactly
//! as the trace store's is: it accelerates `stats` and feeds LRU eviction,
//! but entries are self-describing and self-checking.
//!
//! # Fallback rules
//!
//! [`ReportStore::load`] returns `None` — and the service recomputes — for
//! *any* defect: missing file, foreign magic, version or digest mismatch,
//! bad length, failed checksum. A defective entry is reported on stderr
//! and counted, never trusted; the recompute's save overwrites it. The
//! store can make a request cheaper or leave it unchanged, but never
//! wrong — and because the payload is stored byte-exact, a hit is
//! byte-identical to the computed response it memoizes.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use pomtlb_trace::digest::{digest_hex, fnv1a64};

/// File magic for memoized response bodies.
const REPORT_MAGIC: &[u8; 8] = b"POMREP1\n";
/// Bumped whenever the layout above changes; readers reject other versions.
pub const REPORT_FORMAT_VERSION: u32 = 1;
/// Fixed header size in bytes.
const HEADER_BYTES: usize = 68;
/// Default size cap for [`ReportStore::gc`]: 256 MiB (bodies are small
/// JSON documents; this is thousands of memoized sweeps).
pub const DEFAULT_REPORT_MAX_BYTES: u64 = 256 << 20;

const MANIFEST_FILE: &str = "manifest.tsv";
const MANIFEST_LOCK_FILE: &str = "manifest.lock";
const REPORT_EXT: &str = "pomrep";

/// A lock file older than this is presumed left by a crashed writer and
/// broken.
const LOCK_STALE_AGE: Duration = Duration::from_secs(2);

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Counter snapshot of one store handle's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportCounters {
    /// Bodies served from disk.
    pub hits: u64,
    /// Lookups that found no usable entry (absent or defective).
    pub misses: u64,
    /// Bodies persisted by this handle.
    pub stores: u64,
    /// Total payload bytes read for hits.
    pub bytes_read: u64,
    /// Misses caused by a defective file rather than an absent one.
    pub load_failures: u64,
}

/// One memoized body visible in the store directory, merged from the file
/// scan and the advisory manifest.
#[derive(Debug, Clone)]
pub struct ReportEntry {
    /// Request digest (the file stem).
    pub digest: String,
    /// Request kind ("?" when the manifest lacks the entry).
    pub kind: String,
    /// Workload name ("?" when the manifest lacks the entry).
    pub workload: String,
    /// File size in bytes (from the file system, not the manifest).
    pub bytes: u64,
    /// Unix seconds of last load or save (0 when unknown).
    pub last_used: u64,
}

/// Integrity-check result for one on-disk body.
#[derive(Debug, Clone)]
pub struct ReportVerifyEntry {
    /// Request digest (the file stem).
    pub digest: String,
    /// File size in bytes.
    pub bytes: u64,
    /// `None` when the file passed every check, else the failure reason.
    pub error: Option<String>,
}

impl ReportVerifyEntry {
    /// Whether the body passed every check.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// What one [`ReportStore::gc`] pass evicted.
#[derive(Debug, Clone, Default)]
pub struct ReportGcReport {
    /// `(digest, bytes)` of evicted bodies, least recently used first.
    pub evicted: Vec<(String, u64)>,
    /// Body bytes remaining on disk after the pass.
    pub live_bytes: u64,
}

#[derive(Debug, Default)]
struct Manifest {
    entries: Vec<ReportEntry>,
}

/// Versioned tab-separated manifest; free-form fields (kind, workload)
/// come last so embedded tabs cannot shift the fixed columns. Unreadable
/// lines are skipped on parse — the manifest is advisory.
fn format_manifest(m: &Manifest) -> String {
    let mut out = format!("pomtlb-report-manifest\t{REPORT_FORMAT_VERSION}\n");
    for e in &m.entries {
        let clean = |s: &str| s.chars().filter(|c| !c.is_control()).collect::<String>();
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            e.digest,
            e.bytes,
            e.last_used,
            clean(&e.kind),
            clean(&e.workload),
        ));
    }
    out
}

fn parse_manifest(text: &str) -> Manifest {
    let mut lines = text.lines();
    if lines.next().and_then(|h| h.strip_prefix("pomtlb-report-manifest\t")).is_none() {
        return Manifest::default();
    }
    let mut m = Manifest::default();
    for line in lines {
        let f: Vec<&str> = line.splitn(5, '\t').collect();
        if f.len() != 5 {
            continue;
        }
        let (Ok(bytes), Ok(last_used)) = (f[1].parse::<u64>(), f[2].parse::<u64>()) else {
            continue;
        };
        m.entries.push(ReportEntry {
            digest: f[0].to_string(),
            kind: f[3].to_string(),
            workload: f[4].to_string(),
            bytes,
            last_used,
        });
    }
    m
}

fn unix_now() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// Encodes one POMREP1 file: header + payload.
fn encode_entry(digest: &[u8; 32], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(REPORT_MAGIC);
    out.extend_from_slice(&REPORT_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(digest);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    let header_sum = fnv1a64(&out[..60]);
    out.extend_from_slice(&header_sum.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes and fully validates one POMREP1 file against the expected
/// request digest, returning the payload bytes.
fn decode_entry(bytes: &[u8], expect_digest: &[u8; 32]) -> io::Result<Vec<u8>> {
    if bytes.len() < HEADER_BYTES {
        return Err(invalid("file shorter than the POMREP1 header"));
    }
    if &bytes[..8] != REPORT_MAGIC {
        return Err(invalid("bad magic (not a POMREP1 file)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap_or_default());
    if version != REPORT_FORMAT_VERSION {
        return Err(invalid(format!(
            "format version {version}, expected {REPORT_FORMAT_VERSION}"
        )));
    }
    let header_sum = u64::from_le_bytes(bytes[60..68].try_into().unwrap_or_default());
    if fnv1a64(&bytes[..60]) != header_sum {
        return Err(invalid("header checksum mismatch"));
    }
    if &bytes[12..44] != expect_digest {
        return Err(invalid("stored digest does not match the requested key"));
    }
    let payload_len = u64::from_le_bytes(bytes[44..52].try_into().unwrap_or_default());
    let expect_len = HEADER_BYTES as u64 + payload_len;
    if bytes.len() as u64 != expect_len {
        return Err(invalid(format!(
            "file is {} bytes, header implies {expect_len}",
            bytes.len()
        )));
    }
    let payload = &bytes[HEADER_BYTES..];
    let payload_sum = u64::from_le_bytes(bytes[52..60].try_into().unwrap_or_default());
    if fnv1a64(payload) != payload_sum {
        return Err(invalid("payload checksum mismatch"));
    }
    Ok(payload.to_vec())
}

/// Validates one POMREP1 file on disk without an expected digest (the
/// stem supplies it): `verify`'s per-file check.
fn verify_file(path: &Path, stem_hex: &str) -> io::Result<()> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_BYTES {
        return Err(invalid("file shorter than the POMREP1 header"));
    }
    let mut digest = [0u8; 32];
    digest.copy_from_slice(&bytes[12..44]);
    if digest_hex(&digest) != stem_hex {
        return Err(invalid("stored digest does not match the file name"));
    }
    decode_entry(&bytes, &digest).map(|_| ())
}

/// A persistent, content-addressed cache of serve response bodies under
/// one directory. See the module docs for the on-disk contract.
///
/// Handles are cheap and independent: two processes (or two handles in
/// one process) pointed at the same directory interoperate through the
/// atomic-rename write protocol, exactly like [`pomtlb_trace::TraceStore`].
#[derive(Debug)]
pub struct ReportStore {
    root: PathBuf,
    max_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    bytes_read: AtomicU64,
    load_failures: AtomicU64,
    /// Serializes manifest read-modify-write cycles within this handle;
    /// cross-handle writers are serialized by the advisory lock file.
    manifest_lock: Mutex<()>,
}

impl ReportStore {
    /// Opens (creating if needed) a store rooted at `dir`, with the
    /// default [`DEFAULT_REPORT_MAX_BYTES`] garbage-collection cap.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ReportStore> {
        let root = dir.into();
        fs::create_dir_all(&root)?;
        Ok(ReportStore {
            root,
            max_bytes: DEFAULT_REPORT_MAX_BYTES,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
            manifest_lock: Mutex::new(()),
        })
    }

    /// Replaces the garbage-collection size cap (floored at one byte).
    pub fn with_max_bytes(mut self, max_bytes: u64) -> ReportStore {
        self.max_bytes = max_bytes.max(1);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The garbage-collection size cap in bytes.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Snapshot of this handle's hit/miss counters.
    pub fn counters(&self) -> ReportCounters {
        ReportCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
        }
    }

    fn file_path(&self, digest_hex: &str) -> PathBuf {
        self.root.join(format!("{digest_hex}.{REPORT_EXT}"))
    }

    /// Loads the memoized body for `digest`, or `None` on a miss.
    ///
    /// A miss is an absent file *or any defect whatsoever* — wrong magic,
    /// version or digest mismatch, truncation, checksum failure. Defects
    /// warn on stderr and count as [`ReportCounters::load_failures`]; the
    /// service recomputes, so a damaged store costs time, never a wrong
    /// (or non-identical) answer.
    pub fn load(&self, digest: &[u8; 32]) -> Option<Vec<u8>> {
        let hex = digest_hex(digest);
        let path = self.file_path(&hex);
        if !path.exists() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let read = fs::read(&path).and_then(|bytes| decode_entry(&bytes, digest));
        match read {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_read.fetch_add(payload.len() as u64, Ordering::Relaxed);
                self.touch(&hex);
                Some(payload)
            }
            Err(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.load_failures.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "report-store: {} unusable ({e}); recomputing",
                    path.display()
                );
                None
            }
        }
    }

    /// Persists `payload` as the memoized body for `digest`, returning the
    /// bytes written. The write goes to a tmp file and is atomically
    /// renamed into place, then the manifest is updated and a GC pass
    /// enforces the size cap. `kind` and `workload` label the manifest row.
    pub fn save(
        &self,
        digest: &[u8; 32],
        payload: &[u8],
        kind: &str,
        workload: &str,
    ) -> io::Result<u64> {
        // The tmp name is unique per call (not just per digest): two
        // handles saving the same key concurrently must each stage into
        // their own file, or the interleaved writes could rename a torn
        // body into place.
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let hex = digest_hex(digest);
        let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(format!(".{hex}.{}.{seq}.tmp", std::process::id()));
        let path = self.file_path(&hex);
        let encoded = encode_entry(digest, payload);
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&encoded)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &path)?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.index(&hex, encoded.len() as u64, kind, workload);
        self.gc();
        Ok(encoded.len() as u64)
    }

    /// Scans the directory for body files: `(digest, bytes)` pairs.
    fn scan(&self) -> Vec<(String, u64)> {
        let Ok(dir) = fs::read_dir(&self.root) else { return Vec::new() };
        let mut out: Vec<(String, u64)> = dir
            .flatten()
            .filter_map(|entry| {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == REPORT_EXT) {
                    let stem = path.file_stem()?.to_str()?.to_string();
                    let bytes = entry.metadata().ok()?.len();
                    Some((stem, bytes))
                } else {
                    None
                }
            })
            .collect();
        out.sort();
        out
    }

    fn file_mtime_unix(&self, digest: &str) -> u64 {
        fs::metadata(self.file_path(digest))
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }

    /// Every memoized body currently on disk, most recently used first.
    pub fn entries(&self) -> Vec<ReportEntry> {
        let manifest = self.read_manifest();
        let mut out: Vec<ReportEntry> = self
            .scan()
            .into_iter()
            .map(|(digest, bytes)| match manifest.entries.iter().find(|e| e.digest == digest) {
                Some(m) => ReportEntry { bytes, ..m.clone() },
                None => ReportEntry {
                    last_used: self.file_mtime_unix(&digest),
                    digest,
                    kind: "?".into(),
                    workload: "?".into(),
                    bytes,
                },
            })
            .collect();
        out.sort_by(|a, b| b.last_used.cmp(&a.last_used).then_with(|| a.digest.cmp(&b.digest)));
        out
    }

    /// Total bytes of memoized bodies on disk (manifest excluded).
    pub fn total_bytes(&self) -> u64 {
        self.scan().iter().map(|(_, b)| b).sum()
    }

    /// Integrity-checks every body on disk: header, digest-vs-name, exact
    /// length, checksums. Defective entries are reported with the reason
    /// but left in place (the next `save` of that key overwrites them;
    /// `gc` evicts them like any other entry).
    pub fn verify(&self) -> Vec<ReportVerifyEntry> {
        self.scan()
            .into_iter()
            .map(|(digest, bytes)| {
                let error =
                    verify_file(&self.file_path(&digest), &digest).err().map(|e| e.to_string());
                ReportVerifyEntry { digest, bytes, error }
            })
            .collect()
    }

    /// Evicts least-recently-used bodies until the store fits
    /// [`ReportStore::max_bytes`]. Recency comes from the manifest's
    /// `last_used` stamps, falling back to file mtime for unindexed files;
    /// ties break by digest so the pass is deterministic.
    pub fn gc(&self) -> ReportGcReport {
        let files = self.scan();
        let mut total: u64 = files.iter().map(|(_, b)| b).sum();
        if total <= self.max_bytes {
            return ReportGcReport { evicted: Vec::new(), live_bytes: total };
        }
        let manifest = self.read_manifest();
        let mut ranked: Vec<(u64, String, u64)> = files
            .into_iter()
            .map(|(digest, bytes)| {
                let stamp = manifest
                    .entries
                    .iter()
                    .find(|e| e.digest == digest)
                    .map(|e| e.last_used)
                    .unwrap_or_else(|| self.file_mtime_unix(&digest));
                (stamp, digest, bytes)
            })
            .collect();
        ranked.sort();
        let mut evicted = Vec::new();
        for (_, digest, bytes) in ranked {
            if total <= self.max_bytes {
                break;
            }
            if fs::remove_file(self.file_path(&digest)).is_ok() {
                total = total.saturating_sub(bytes);
                evicted.push((digest, bytes));
            }
        }
        if !evicted.is_empty() {
            let _guard = self.manifest_lock.lock().unwrap_or_else(|e| e.into_inner());
            let _dir = self.lock_manifest_dir();
            let mut manifest = self.read_manifest();
            manifest.entries.retain(|e| !evicted.iter().any(|(d, _)| *d == e.digest));
            self.write_manifest(&manifest);
        }
        ReportGcReport { evicted, live_bytes: total }
    }

    fn read_manifest(&self) -> Manifest {
        fs::read_to_string(self.root.join(MANIFEST_FILE))
            .map(|s| parse_manifest(&s))
            .unwrap_or_default()
    }

    /// Best-effort manifest write (tmp + rename). The manifest is
    /// advisory, so failures are silently absorbed.
    fn write_manifest(&self, manifest: &Manifest) {
        let tmp = self.root.join(".manifest.tmp");
        if fs::write(&tmp, format_manifest(manifest)).is_ok() {
            let _ = fs::rename(&tmp, self.root.join(MANIFEST_FILE));
        }
    }

    /// Acquires the advisory cross-process manifest lock (create-new lock
    /// file, stale-broken after [`LOCK_STALE_AGE`], bounded wait — same
    /// protocol and rationale as the trace store's).
    fn lock_manifest_dir(&self) -> DirLockGuard {
        let path = self.root.join(MANIFEST_LOCK_FILE);
        for _ in 0..50 {
            match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(_) => return DirLockGuard { path, held: true },
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| SystemTime::now().duration_since(t).ok())
                        .is_some_and(|age| age > LOCK_STALE_AGE);
                    if stale {
                        let _ = fs::remove_file(&path);
                    } else {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
                // Unwritable directory or the like: locking is impossible,
                // proceed unlocked rather than spinning.
                Err(_) => break,
            }
        }
        DirLockGuard { path, held: false }
    }

    fn index(&self, digest: &str, bytes: u64, kind: &str, workload: &str) {
        let _guard = self.manifest_lock.lock().unwrap_or_else(|e| e.into_inner());
        let _dir = self.lock_manifest_dir();
        let mut manifest = self.read_manifest();
        manifest.entries.retain(|e| e.digest != digest);
        manifest.entries.push(ReportEntry {
            digest: digest.to_string(),
            kind: kind.to_string(),
            workload: workload.to_string(),
            bytes,
            last_used: unix_now(),
        });
        self.write_manifest(&manifest);
    }

    /// Stamps `digest` as just-used; unindexed entries (orphaned by a lost
    /// manifest) are indexed on the spot so GC recency stays honest.
    fn touch(&self, digest: &str) {
        let _guard = self.manifest_lock.lock().unwrap_or_else(|e| e.into_inner());
        let _dir = self.lock_manifest_dir();
        let mut manifest = self.read_manifest();
        match manifest.entries.iter_mut().find(|e| e.digest == digest) {
            Some(entry) => entry.last_used = unix_now(),
            None => {
                let bytes = fs::metadata(self.file_path(digest)).map(|m| m.len()).unwrap_or(0);
                manifest.entries.push(ReportEntry {
                    digest: digest.to_string(),
                    kind: "?".into(),
                    workload: "?".into(),
                    bytes,
                    last_used: unix_now(),
                });
            }
        }
        self.write_manifest(&manifest);
    }

    #[cfg(test)]
    fn force_last_used(&self, digest: &str, stamp: u64) {
        let _guard = self.manifest_lock.lock().unwrap_or_else(|e| e.into_inner());
        let _dir = self.lock_manifest_dir();
        let mut manifest = self.read_manifest();
        if let Some(entry) = manifest.entries.iter_mut().find(|e| e.digest == digest) {
            entry.last_used = stamp;
            self.write_manifest(&manifest);
        }
    }
}

/// Guard for [`ReportStore::lock_manifest_dir`]: removes the lock file on
/// drop when it was actually acquired.
#[derive(Debug)]
struct DirLockGuard {
    path: PathBuf,
    held: bool,
}

impl Drop for DirLockGuard {
    fn drop(&mut self) {
        if self.held {
            let _ = fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomtlb_trace::digest::digest256;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir()
                .join(format!("pomtlb-report-store-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn save_then_load_round_trips_byte_exact() {
        let dir = TempDir::new("roundtrip");
        let store = ReportStore::open(&dir.0).expect("open");
        let digest = digest256(b"request-1");
        let payload = br#"{"kind":"compare","reports":[1,2,3]}"#;
        store.save(&digest, payload, "compare", "gups").expect("save");
        let back = store.load(&digest).expect("hit");
        assert_eq!(back, payload.to_vec(), "payload is byte-exact");
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.stores), (1, 0, 1));
        assert_eq!(c.bytes_read, payload.len() as u64);
    }

    #[test]
    fn absent_entry_is_a_clean_miss() {
        let dir = TempDir::new("miss");
        let store = ReportStore::open(&dir.0).expect("open");
        assert!(store.load(&digest256(b"never-saved")).is_none());
        let c = store.counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.load_failures, 0, "absence is not a defect");
    }

    #[test]
    fn corruption_is_detected_and_recomputed() {
        let dir = TempDir::new("corrupt");
        let store = ReportStore::open(&dir.0).expect("open");
        let digest = digest256(b"to-corrupt");
        store.save(&digest, b"payload bytes here", "sim", "mcf").expect("save");
        // Flip one payload byte on disk.
        let path = store.file_path(&digest_hex(&digest));
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        assert!(store.load(&digest).is_none(), "corrupt entry must miss");
        assert_eq!(store.counters().load_failures, 1);
        // A recompute's save overwrites and the entry is usable again.
        store.save(&digest, b"payload bytes here", "sim", "mcf").expect("resave");
        assert_eq!(store.load(&digest).expect("hit"), b"payload bytes here".to_vec());
    }

    #[test]
    fn truncation_and_foreign_magic_are_defects() {
        let dir = TempDir::new("defects");
        let store = ReportStore::open(&dir.0).expect("open");
        let digest = digest256(b"trunc");
        store.save(&digest, b"0123456789", "sim", "gups").expect("save");
        let path = store.file_path(&digest_hex(&digest));
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 1]).expect("truncate");
        assert!(store.load(&digest).is_none());
        fs::write(&path, b"NOTAREPORTFILE..").expect("clobber");
        assert!(store.load(&digest).is_none());
        assert_eq!(store.counters().load_failures, 2);
    }

    #[test]
    fn verify_reports_defects_with_reasons() {
        let dir = TempDir::new("verify");
        let store = ReportStore::open(&dir.0).expect("open");
        let good = digest256(b"good");
        let bad = digest256(b"bad");
        store.save(&good, b"fine", "compare", "gups").expect("save");
        store.save(&bad, b"doomed", "compare", "mcf").expect("save");
        let path = store.file_path(&digest_hex(&bad));
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).expect("rewrite");
        let entries = store.verify();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries.iter().filter(|e| e.is_ok()).count(), 1);
        let defect = entries.iter().find(|e| !e.is_ok()).expect("one defect");
        assert_eq!(defect.digest, digest_hex(&bad));
        assert!(defect.error.as_deref().unwrap_or("").contains("checksum"));
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let dir = TempDir::new("gc");
        let store = ReportStore::open(&dir.0).expect("open");
        let payload = vec![0x5a_u8; 1024];
        let digests: Vec<[u8; 32]> =
            (0..4).map(|i| digest256(format!("entry-{i}").as_bytes())).collect();
        for (i, d) in digests.iter().enumerate() {
            store.save(d, &payload, "compare", "gups").expect("save");
            store.force_last_used(&digest_hex(d), 1000 + i as u64);
        }
        let total = store.total_bytes();
        let store = ReportStore::open(&dir.0).expect("reopen").with_max_bytes(total - 1);
        let report = store.gc();
        assert_eq!(report.evicted.len(), 1);
        assert_eq!(report.evicted[0].0, digest_hex(&digests[0]), "LRU entry goes first");
        assert!(store.load(&digests[0]).is_none());
        assert!(store.load(&digests[3]).is_some());
    }

    #[test]
    fn entries_merge_manifest_and_scan() {
        let dir = TempDir::new("entries");
        let store = ReportStore::open(&dir.0).expect("open");
        let d = digest256(b"listed");
        store.save(&d, b"body", "fault-sweep", "streamcluster").expect("save");
        let entries = store.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].digest, digest_hex(&d));
        assert_eq!(entries[0].kind, "fault-sweep");
        assert_eq!(entries[0].workload, "streamcluster");
        // A lost manifest degrades to "?" labels, never to a failure.
        fs::remove_file(dir.0.join(MANIFEST_FILE)).expect("drop manifest");
        let entries = store.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, "?");
    }
}
