//! Socket transports: hardened per-connection loops over Unix and TCP.
//!
//! Both transports share one accept shape and one per-connection loop, so
//! every robustness property holds uniformly:
//!
//! * **Connection bound** — at most `max_connections` handler threads;
//!   further connections receive one typed `busy` line naming the active
//!   and maximum counts, then a clean close.
//! * **Bounded lines** — a request line longer than `max_line_bytes`
//!   answers a typed `error` line and closes; the buffer never grows past
//!   the bound.
//! * **Idle timeout** — a connection that completes no request within
//!   `idle_timeout` is closed with a typed line. The clock measures time
//!   since the last *completed request*, not the last byte, so a
//!   slow-loris dribble cannot hold a slot open indefinitely.
//! * **Deadlines, not hangs** — reads poll on a short tick (so a shutdown
//!   served on another connection ends this one promptly) and writes
//!   carry a timeout (so a stalled reader cannot park a handler forever).
//! * **Graceful drain** — when any connection serves `shutdown`, the
//!   accept loop stops taking new work immediately (the listener closes,
//!   so post-drain connects are refused at the OS level), in-flight
//!   handlers get up to `drain_timeout` to finish and flush, and tier
//!   counters are persisted exactly once at the end.
//!
//! The request semantics on top — tier walk, coalescing, memoization,
//! typed `busy`/`deadline_exceeded` lines — all live in
//! [`crate::service`]; this module only moves bytes safely.

use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::service::{Service, ServiceShared};

/// Read-timeout tick: how often a blocked read wakes to check for
/// shutdown and idle deadlines.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Per-write timeout: a peer that stops reading for this long costs the
/// daemon one closed connection, never a parked handler thread.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// What a socket stream must offer beyond `Read`/`Write` on its
/// reference: the timeout knobs the hardened loop drives.
pub(crate) trait ConnStream {
    /// Blocking mode (accepted sockets may inherit nonblocking listeners).
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
    /// Read timeout (the poll tick).
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Write timeout (the stalled-reader guard).
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl ConnStream for TcpStream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
}

#[cfg(unix)]
impl ConnStream for std::os::unix::net::UnixStream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        std::os::unix::net::UnixStream::set_nonblocking(self, nonblocking)
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        std::os::unix::net::UnixStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        std::os::unix::net::UnixStream::set_write_timeout(self, timeout)
    }
}

/// How one bounded line read ended.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// EOF arrived mid-line; serve the unterminated final request.
    FinalLine,
    /// Clean EOF between lines.
    Eof,
    /// A shutdown served elsewhere ended this conversation.
    Shutdown,
    /// No request completed within the idle budget.
    Idle,
    /// The line outgrew `max_line_bytes`.
    Oversize,
}

/// Accumulates one newline-terminated line into `line`, bounded by
/// `max_line_bytes`, waking every [`POLL_TICK`] to observe shutdown and
/// the idle deadline. Partial input survives timeouts intact — only the
/// bound, EOF, or a deadline ends the accumulation early.
fn read_line_bounded(
    shared: &ServiceShared,
    reader: &mut impl BufRead,
    line: &mut Vec<u8>,
    last_done: Instant,
) -> io::Result<LineRead> {
    let max_line = shared.max_line_bytes();
    let idle = shared.idle_timeout();
    loop {
        if shared.shutdown_requested() {
            return Ok(LineRead::Shutdown);
        }
        if let Some(budget) = idle {
            if last_done.elapsed() > budget {
                return Ok(LineRead::Idle);
            }
        }
        match reader.fill_buf() {
            Ok([]) => {
                return Ok(if line.is_empty() { LineRead::Eof } else { LineRead::FinalLine });
            }
            Ok(buf) => {
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    line.extend_from_slice(&buf[..pos]);
                    reader.consume(pos + 1);
                    return Ok(if line.len() > max_line { LineRead::Oversize } else { LineRead::Line });
                }
                let n = buf.len();
                line.extend_from_slice(buf);
                reader.consume(n);
                if line.len() > max_line {
                    return Ok(LineRead::Oversize);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
}

fn respond(service: &mut Service, out: &mut impl Write, raw: &[u8]) -> io::Result<()> {
    let text = String::from_utf8_lossy(raw);
    if let Some(response) = service.handle_line(&text) {
        out.write_all(response.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
    }
    Ok(())
}

/// The shared per-connection loop: bounded line reads, idle accounting,
/// one response per request, typed lines for every refusal. Transport
/// errors (including write timeouts) end only this conversation.
fn serve_conn<S>(service: &mut Service, stream: &S) -> io::Result<()>
where
    S: ConnStream,
    for<'a> &'a S: Read + Write,
{
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let shared = Arc::clone(service.shared());
    let mut reader = io::BufReader::new(stream);
    let mut out = stream;
    let mut line: Vec<u8> = Vec::new();
    let mut last_done = Instant::now();
    loop {
        line.clear();
        match read_line_bounded(&shared, &mut reader, &mut line, last_done)? {
            LineRead::Line => {
                respond(service, &mut out, &line)?;
                last_done = Instant::now();
            }
            LineRead::FinalLine => {
                respond(service, &mut out, &line)?;
                return Ok(());
            }
            LineRead::Eof | LineRead::Shutdown => return Ok(()),
            LineRead::Idle => {
                let budget = shared.idle_timeout().unwrap_or_default();
                let msg = format!(
                    "{{\"id\":\"\",\"ok\":false,\"idle_timeout\":true,\
                     \"error\":\"no request completed in {}ms; closing idle connection\"}}\n",
                    budget.as_millis()
                );
                let _ = out.write_all(msg.as_bytes());
                return Ok(());
            }
            LineRead::Oversize => {
                let msg = format!(
                    "{{\"id\":\"\",\"ok\":false,\
                     \"error\":\"request line exceeds max_line_bytes ({}); closing\"}}\n",
                    shared.max_line_bytes()
                );
                let _ = out.write_all(msg.as_bytes());
                return Ok(());
            }
        }
    }
}

/// Decrements the active-connection count when the handler ends, however
/// it ends.
struct SlotGuard(Arc<ServiceShared>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.connection_closed();
    }
}

/// The accept shape both transports share: poll-accept until shutdown,
/// refuse over-limit connections with one typed line, serve the rest on
/// detached handler threads (detached so the drain budget — not an
/// unbounded join — decides how long shutdown waits).
fn accept_loop<S, F>(service: &Service, mut accept: F)
where
    S: ConnStream + Send + 'static,
    for<'a> &'a S: Read + Write,
    F: FnMut() -> io::Result<S>,
{
    let max_connections = service.shared().max_connections();
    loop {
        if service.shutdown_requested() {
            return;
        }
        match accept() {
            Ok(stream) => {
                let shared = service.shared();
                let active = shared.active_connections();
                if active >= max_connections {
                    // Refuse with one typed line; never stall the accept
                    // loop behind a saturated handler set.
                    shared.note_refused_connection();
                    let line = format!(
                        "{{\"id\":\"\",\"ok\":false,\"busy\":true,\
                         \"active_connections\":{active},\"max_connections\":{max_connections},\
                         \"error\":\"server busy: connection limit reached; retry later\"}}\n",
                        );
                    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                    let _ = (&stream).write_all(line.as_bytes());
                    continue;
                }
                shared.connection_opened();
                let guard = SlotGuard(Arc::clone(shared));
                let mut conn = service.connection();
                std::thread::spawn(move || {
                    // A dropped connection only ends that conversation,
                    // never the daemon: the shared warm core lives on.
                    let _guard = guard;
                    if let Err(e) = serve_conn(&mut conn, &stream) {
                        eprintln!("pomtlb-serve: connection error: {e}");
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("pomtlb-serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// The drain half of graceful shutdown: wait up to `drain_timeout` for
/// in-flight handlers to finish (the listener is already closed, so no
/// new work can arrive), then persist tier counters exactly once. A
/// handler still running past the budget is abandoned — its connection
/// stays open until the process exits, but shutdown no longer waits.
fn drain_and_persist(shared: &ServiceShared) {
    let deadline = Instant::now() + shared.drain_timeout();
    while shared.active_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let leftover = shared.active_connections();
    if leftover > 0 {
        eprintln!(
            "pomtlb-serve: drain budget spent with {leftover} connection(s) still active"
        );
    }
    shared.persist_counters();
}

/// Binds the daemon's Unix socket, with stale-socket recovery: if the
/// path is already bound (`EADDRINUSE`), probe it — a live daemon
/// answering the connect means the address is genuinely taken (error
/// out); a refused connect means a previous daemon died without
/// unlinking, so remove the stale file and bind again.
#[cfg(unix)]
pub fn bind_unix_listener(path: &std::path::Path) -> io::Result<std::os::unix::net::UnixListener> {
    use std::os::unix::net::{UnixListener, UnixStream};
    match UnixListener::bind(path) {
        Ok(listener) => Ok(listener),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{} is served by a live daemon", path.display()),
                ));
            }
            std::fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

/// The Unix-socket transport: binds `path` (recovering stale socket
/// files, refusing live ones), then serves connections through the shared
/// hardened loop. On shutdown the socket file is removed immediately —
/// post-drain connects are refused — and in-flight handlers drain per
/// [`drain_and_persist`].
#[cfg(unix)]
pub fn serve_unix(service: &Service, path: &std::path::Path) -> io::Result<()> {
    let listener = bind_unix_listener(path)?;
    listener.set_nonblocking(true)?;
    eprintln!(
        "pomtlb-serve: listening on {} (max {} connections)",
        path.display(),
        service.shared().max_connections()
    );
    accept_loop(service, || {
        let (stream, _addr) = listener.accept()?;
        Ok(stream)
    });
    drop(listener);
    let _ = std::fs::remove_file(path);
    drain_and_persist(service.shared());
    Ok(())
}

/// Binds the daemon's TCP listener (e.g. `127.0.0.1:7070`; port `0`
/// lets the OS pick — read it back from `local_addr`).
pub fn bind_tcp_listener(addr: &str) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// The TCP transport: identical request semantics and connection
/// hardening as [`serve_unix`], over a network listener. The listener
/// closes the moment shutdown is observed, so post-drain connects are
/// refused at the OS level while in-flight handlers finish.
pub fn serve_tcp(service: &Service, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    if let Ok(addr) = listener.local_addr() {
        eprintln!(
            "pomtlb-serve: listening on tcp://{addr} (max {} connections)",
            service.shared().max_connections()
        );
    }
    accept_loop(service, || {
        let (stream, _addr) = listener.accept()?;
        // One request line, one response line: latency wants the segment
        // out now, not Nagle-batched.
        let _ = stream.set_nodelay(true);
        Ok(stream)
    });
    drop(listener);
    drain_and_persist(service.shared());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(unix)]
    #[test]
    fn stale_socket_files_are_recovered_live_ones_are_refused() {
        use std::os::unix::net::UnixListener;
        let dir = std::env::temp_dir()
            .join(format!("pomtlb-transport-sock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("daemon.sock");
        // A dead daemon's leftover: bound once, listener dropped, file
        // still on disk.
        drop(UnixListener::bind(&path).expect("first bind"));
        assert!(path.exists(), "socket file survives the dead listener");
        let recovered = bind_unix_listener(&path).expect("stale socket is recovered");
        // While that daemon is alive, a second bind must refuse.
        let err = bind_unix_listener(&path).expect_err("live socket is refused");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        assert!(err.to_string().contains("live daemon"));
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_listener_binds_ephemeral_ports() {
        let listener = bind_tcp_listener("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        assert_ne!(addr.port(), 0, "the OS picked a real port");
    }
}
