//! The long-lived sweep service: shared warm core, per-connection state,
//! request dispatch, transports.
//!
//! A [`Service`] is a lightweight per-connection handle onto one shared
//! warm core ([`ServiceShared`]): the resolved configuration, one warm
//! [`TraceStore`] handle (input streams), one [`ReportStore`] handle
//! (memoized response bodies), the in-memory hot tier, the single-flight
//! table, and the admission gate in front of the worker pool.
//! [`Service::handle_line`] maps one request line to one response line;
//! [`serve_stdin`] drives one conversation, and the socket transports in
//! [`crate::transport`] (`serve_unix`, `serve_tcp`) multiplex many — one
//! handler thread per accepted connection (bounded by `max_connections`),
//! all sharing the same warm core through [`Service::connection`].
//!
//! # Response lines
//!
//! One JSON object per request, in request order:
//!
//! ```text
//! {"id":"c1","ok":true,"provenance":"computed","wall_ms":412,"body":{...}}
//! {"id":"c2","ok":true,"provenance":"memoized","wall_ms":1,"body":{...}}
//! {"id":"c3","ok":true,"provenance":"hot","wall_ms":0,"body":{...}}
//! {"id":"c4","ok":true,"provenance":"coalesced","wall_ms":410,"body":{...}}
//! {"id":"c5","ok":false,"busy":true,"in_flight":2,"queued":8,"error":"..."}
//! {"id":"c6","ok":false,"error":"unknown workload `nope`; known: ..."}
//! {"id":"c7","ok":false,"deadline_exceeded":true,"error":"..."}
//! ```
//!
//! `provenance` says which tier answered: `"computed"` (ran simulations),
//! `"memoized"` (on-disk report store), `"hot"` (in-memory hot cache), or
//! `"coalesced"` (spliced from an identical request already in flight).
//! Every non-computed body is spliced into the response line *verbatim*
//! from the tier's stored string — not re-serialized — so all four tiers
//! produce byte-identical bodies for the same request, by construction.
//!
//! # The tier walk
//!
//! For a memoizable request the handler tries, in order: hot cache (map
//! probe), single-flight join (follower parks on the leader), on-disk
//! store (read + checksum), and finally compute — gated by
//! [`AdmissionControl`] so N connections cannot oversubscribe the one
//! worker pool; past the bounded queue the request gets a typed
//! `busy` line instead of stalling the conversation.
//!
//! # What is never memoized
//!
//! Error responses (they describe the request, not a result) and
//! `fault-sweep` bodies (the fault plan's interaction with retries makes
//! the run itself the product — see [`crate::ServeRequest`]'s `no_memoize`
//! and [`ResolvedRequest::memoize`](crate::ResolvedRequest)). Those
//! requests also skip the hot cache and the single-flight table, but they
//! still pay admission: the gate prices compute, not caching.

use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pom_tlb::{
    default_jobs, run_jobs_with, share_traces_with_store, AdmissionControl, JobOutcome, RunPolicy,
    SimReport,
};
use pomtlb_trace::digest::digest_hex;
use pomtlb_trace::TraceStore;
use serde::Serialize;

use crate::flight::{FlightFailure, Joined, SingleFlight};
use crate::hot_cache::{HotCache, DEFAULT_HOT_MAX_BYTES};
use crate::report_store::{ReportStore, DEFAULT_REPORT_MAX_BYTES};
use crate::request::{request_digest, ResolvedRequest, ServeRequest};
use crate::tiers::TierSnapshot;

/// Default bound on concurrently served socket connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 16;

/// Default bound on compute requests parked behind the admission gate.
pub const DEFAULT_MAX_QUEUE: usize = 32;

/// Default bound on one request line's byte length (1 MiB). An oversized
/// line gets a typed error response and a clean close — never an
/// unbounded buffer.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Default graceful-drain budget on shutdown: how long the transport
/// waits for in-flight connections to finish before persisting counters
/// and returning.
pub const DEFAULT_DRAIN_TIMEOUT_SECS: u64 = 30;

/// How many recent latency samples feed the p50/p99 stats.
const LATENCY_WINDOW: usize = 4096;

/// How to stand up a [`Service`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Trace-store directory for warm input streams (`None` = generate
    /// live, share within each batch only).
    pub trace_dir: Option<PathBuf>,
    /// Report-store directory for memoized bodies (`None` = memoization
    /// off; every request computes).
    pub report_dir: Option<PathBuf>,
    /// Report-store garbage-collection cap in bytes.
    pub report_max_bytes: u64,
    /// Worker threads per batch (0 = one per available core).
    pub jobs: usize,
    /// Retry/timeout policy for simulation jobs.
    pub policy: RunPolicy,
    /// Concurrent socket connections served (further ones get a typed
    /// busy line and are closed).
    pub max_connections: usize,
    /// Concurrent requests allowed into the compute path (0 = auto:
    /// scaled to the machine's cores).
    pub max_inflight: usize,
    /// Compute requests parked waiting for a slot before the gate
    /// answers busy.
    pub max_queue: usize,
    /// In-memory hot report cache budget in bytes (0 disables the tier).
    pub hot_max_bytes: u64,
    /// Close a connection that has gone this long without completing a
    /// request (`None` = never). Measured from the last served request,
    /// not the last byte, so a slow-loris dribble cannot hold a slot open.
    pub idle_timeout: Option<Duration>,
    /// Graceful-drain budget: after `shutdown`, how long the transport
    /// waits for in-flight connections before persisting and returning.
    pub drain_timeout: Duration,
    /// Bound on one request line's byte length; oversized lines get a
    /// typed error and a clean close.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            trace_dir: None,
            report_dir: None,
            report_max_bytes: DEFAULT_REPORT_MAX_BYTES,
            jobs: 0,
            policy: RunPolicy::default(),
            max_connections: DEFAULT_MAX_CONNECTIONS,
            max_inflight: 0,
            max_queue: DEFAULT_MAX_QUEUE,
            hot_max_bytes: DEFAULT_HOT_MAX_BYTES,
            idle_timeout: None,
            drain_timeout: Duration::from_secs(DEFAULT_DRAIN_TIMEOUT_SECS),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        }
    }
}

/// Per-service request counters, by response provenance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServiceCounters {
    /// Requests answered by running simulations.
    pub computed: u64,
    /// Requests answered from the on-disk report store.
    pub memoized: u64,
    /// Requests answered from the in-memory hot cache.
    pub hot: u64,
    /// Requests answered by splicing an identical in-flight result.
    pub coalesced: u64,
    /// Requests turned away with a typed busy line.
    pub busy: u64,
    /// Requests answered with an error line.
    pub errors: u64,
    /// Requests answered with a typed `deadline_exceeded` line.
    pub deadlines: u64,
}

impl ServiceCounters {
    /// Requests answered from any cache tier (everything but computed,
    /// busy and errors).
    pub fn served_from_cache(&self) -> u64 {
        self.memoized + self.hot + self.coalesced
    }
}

#[derive(Debug, Default)]
struct SharedCounters {
    computed: AtomicU64,
    memoized: AtomicU64,
    hot: AtomicU64,
    coalesced: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    deadlines: AtomicU64,
}

impl SharedCounters {
    fn snapshot(&self) -> ServiceCounters {
        ServiceCounters {
            computed: self.computed.load(Ordering::Relaxed),
            memoized: self.memoized.load(Ordering::Relaxed),
            hot: self.hot.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            deadlines: self.deadlines.load(Ordering::Relaxed),
        }
    }
}

/// A bounded ring of recent samples; percentile reads sort a copy, which
/// is fine at stats-request frequency.
#[derive(Debug, Default)]
struct SampleWindow {
    samples: Vec<u64>,
    next: usize,
}

impl SampleWindow {
    fn push(&mut self, value: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(value);
        } else {
            self.samples[self.next] = value;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    fn len(&self) -> usize {
        self.samples.len()
    }
}

#[derive(Debug, Default)]
struct LatencyWindows {
    queue_wait_us: SampleWindow,
    service_wall_us: SampleWindow,
}

fn lock_latency<'a>(m: &'a Mutex<LatencyWindows>) -> MutexGuard<'a, LatencyWindows> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn lock_hot<'a>(m: &'a Mutex<HotCache>) -> MutexGuard<'a, HotCache> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// The immutable shared core every connection handle points at: resolved
/// configuration, warm store handles, cache tiers, admission gate, and
/// the service-wide counters they update.
#[derive(Debug)]
pub struct ServiceShared {
    trace_store: Option<TraceStore>,
    report_store: Option<ReportStore>,
    hot: Option<Mutex<HotCache>>,
    flights: SingleFlight,
    admission: AdmissionControl,
    jobs: usize,
    policy: RunPolicy,
    max_connections: usize,
    idle_timeout: Option<Duration>,
    drain_timeout: Duration,
    max_line_bytes: usize,
    started: Instant,
    active_connections: AtomicUsize,
    persists: AtomicU64,
    counters: SharedCounters,
    latency: Mutex<LatencyWindows>,
    shutdown: AtomicBool,
}

impl ServiceShared {
    /// Service-wide request counters, aggregated across every connection.
    pub fn counters(&self) -> ServiceCounters {
        self.counters.snapshot()
    }

    /// The admission gate in front of the compute path.
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// The single-flight table.
    pub fn flights(&self) -> &SingleFlight {
        &self.flights
    }

    /// The bound on concurrently served socket connections.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// Connection slots currently held by handler threads.
    pub fn active_connections(&self) -> usize {
        self.active_connections.load(Ordering::SeqCst)
    }

    /// The per-connection idle budget (`None` = connections never idle
    /// out), measured from the last completed request.
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// How long shutdown waits for in-flight connections to drain.
    pub fn drain_timeout(&self) -> Duration {
        self.drain_timeout
    }

    /// The bound on one request line's byte length.
    pub fn max_line_bytes(&self) -> usize {
        self.max_line_bytes
    }

    /// Wall-clock time since the service was built (the `ping` uptime).
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// How many times tier counters were persisted to disk. The drain
    /// test pins this to "exactly once" across a shutdown.
    pub fn persist_count(&self) -> u64 {
        self.persists.load(Ordering::SeqCst)
    }

    pub(crate) fn connection_opened(&self) {
        self.active_connections.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn connection_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn note_refused_connection(&self) {
        self.counters.busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether a `shutdown` request has been served on any connection.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn tier_snapshot(&self) -> TierSnapshot {
        let requests = self.counters.snapshot();
        let (hot_counters, hot_bytes, hot_max_bytes) = match &self.hot {
            Some(hot) => {
                let hot = lock_hot(hot);
                (hot.counters(), hot.total_bytes(), hot.max_bytes())
            }
            None => (Default::default(), 0, 0),
        };
        let admission = self.admission.counters();
        TierSnapshot {
            computed: requests.computed,
            memoized: requests.memoized,
            hot: requests.hot,
            coalesced: requests.coalesced,
            busy: requests.busy,
            errors: requests.errors,
            deadlines: requests.deadlines,
            hot_hits: hot_counters.hits,
            hot_misses: hot_counters.misses,
            hot_evictions: hot_counters.evictions,
            hot_bytes,
            hot_max_bytes,
            flights_led: self.flights.led(),
            flights_coalesced: self.flights.coalesced(),
            admitted: admission.admitted,
            rejected: admission.rejected,
        }
    }

    /// Best-effort write of the tier counters into the report directory
    /// (see [`crate::TierSnapshot`]); a failure costs observability only.
    pub fn persist_counters(&self) {
        if let Some(store) = &self.report_store {
            self.persists.fetch_add(1, Ordering::SeqCst);
            if let Err(e) = self.tier_snapshot().save(store.root()) {
                eprintln!("pomtlb-serve: counter snapshot failed ({e}); continuing");
            }
        }
    }
}

#[derive(Serialize)]
struct RowBody {
    scheme: String,
    consistency: Option<bool>,
    report: SimReport,
}

#[derive(Serialize)]
struct RunBody {
    kind: String,
    workload: String,
    digest: String,
    rows: Vec<RowBody>,
}

#[derive(Serialize)]
struct ReportStoreStats {
    enabled: bool,
    root: String,
    entries: u64,
    total_bytes: u64,
    hits: u64,
    misses: u64,
    stores: u64,
    bytes_read: u64,
    load_failures: u64,
}

#[derive(Serialize)]
struct TraceStoreStats {
    enabled: bool,
    root: String,
    hits: u64,
    misses: u64,
    bytes_mapped: u64,
    load_failures: u64,
}

#[derive(Serialize)]
struct HotCacheStats {
    enabled: bool,
    entries: u64,
    total_bytes: u64,
    max_bytes: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

#[derive(Serialize)]
struct SingleFlightStats {
    led: u64,
    coalesced: u64,
    in_flight: u64,
}

#[derive(Serialize)]
struct AdmissionStats {
    max_in_flight: u64,
    max_queue: u64,
    in_flight: u64,
    queued: u64,
    admitted: u64,
    rejected: u64,
}

#[derive(Serialize)]
struct LatencyStats {
    samples: u64,
    queue_wait_p50_us: u64,
    queue_wait_p99_us: u64,
    service_wall_p50_us: u64,
    service_wall_p99_us: u64,
}

#[derive(Serialize)]
struct StatsBody {
    kind: String,
    requests: ServiceCounters,
    max_connections: u64,
    active_connections: u64,
    uptime_ms: u64,
    report_store: ReportStoreStats,
    trace_store: TraceStoreStats,
    hot_cache: HotCacheStats,
    single_flight: SingleFlightStats,
    admission: AdmissionStats,
    latency: LatencyStats,
}

fn json_str(s: &str) -> String {
    serde_json::to_string(&s).unwrap_or_else(|_| "\"\"".to_string())
}

/// One response line with a body (`body_json` is spliced in verbatim —
/// this is what makes every cache tier byte-identical to the computed
/// body it caches).
fn ok_line(id: &str, provenance: &str, wall_ms: u128, body_json: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"provenance\":\"{provenance}\",\"wall_ms\":{wall_ms},\"body\":{body_json}}}",
        json_str(id)
    )
}

fn err_line(id: &str, message: &str) -> String {
    format!("{{\"id\":{},\"ok\":false,\"error\":{}}}", json_str(id), json_str(message))
}

/// The typed refusal when the compute gate (or its wait queue) is full.
fn busy_line(id: &str, in_flight: usize, queued: usize) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"busy\":true,\"in_flight\":{in_flight},\"queued\":{queued},\
         \"error\":\"server busy: compute queue full; retry later\"}}",
        json_str(id)
    )
}

/// The typed refusal when the compute blew the per-request deadline
/// ([`RunPolicy::deadline`]): the client gets an answer instead of a
/// hung conversation, and nothing is memoized.
fn deadline_line(id: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"deadline_exceeded\":true,\
         \"error\":\"compute deadline exceeded; retry with a smaller request or higher budget\"}}",
        json_str(id)
    )
}

enum Served {
    Computed,
    Memoized,
    Hot,
    Coalesced,
    Busy,
    Error,
    Deadline,
}

/// Why [`Service::compute_body`] produced no body.
enum ComputeFailure {
    /// The batch blew [`RunPolicy::deadline`].
    Deadline,
    /// A job failed after retries; the operator-facing message.
    Error(String),
}

/// A per-connection handle onto the shared warm core. `new` builds the
/// core and the first handle; [`Service::connection`] mints further
/// handles (fresh per-connection counters, same warm state) for the
/// socket transport's handler threads.
#[derive(Debug)]
pub struct Service {
    shared: Arc<ServiceShared>,
    conn: ServiceCounters,
}

impl Service {
    /// Opens the configured stores and builds a ready service.
    pub fn new(cfg: ServeConfig) -> io::Result<Service> {
        let trace_store = cfg.trace_dir.map(TraceStore::open).transpose()?;
        let report_store = cfg
            .report_dir
            .map(ReportStore::open)
            .transpose()?
            .map(|s| s.with_max_bytes(cfg.report_max_bytes));
        let hot = (cfg.hot_max_bytes > 0).then(|| Mutex::new(HotCache::new(cfg.hot_max_bytes)));
        let max_inflight = if cfg.max_inflight == 0 {
            // Auto: enough concurrent computes to keep the pool busy while
            // one request blocks on I/O, without convoying the cores.
            default_jobs().clamp(2, 8)
        } else {
            cfg.max_inflight
        };
        let shared = ServiceShared {
            trace_store,
            report_store,
            hot,
            flights: SingleFlight::new(),
            admission: AdmissionControl::new(max_inflight, cfg.max_queue),
            jobs: cfg.jobs,
            policy: cfg.policy,
            max_connections: cfg.max_connections.max(1),
            idle_timeout: cfg.idle_timeout,
            drain_timeout: cfg.drain_timeout,
            max_line_bytes: cfg.max_line_bytes.max(1),
            started: Instant::now(),
            active_connections: AtomicUsize::new(0),
            persists: AtomicU64::new(0),
            counters: SharedCounters::default(),
            latency: Mutex::new(LatencyWindows::default()),
            shutdown: AtomicBool::new(false),
        };
        Ok(Service { shared: Arc::new(shared), conn: ServiceCounters::default() })
    }

    /// A new handle onto the same warm core with fresh per-connection
    /// counters — what [`serve_unix`] hands each handler thread.
    pub fn connection(&self) -> Service {
        Service { shared: Arc::clone(&self.shared), conn: ServiceCounters::default() }
    }

    /// The shared warm core this handle points at.
    pub fn shared(&self) -> &Arc<ServiceShared> {
        &self.shared
    }

    /// Whether a `shutdown` request has been served on any connection.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested()
    }

    /// Requests served so far across all connections, by provenance.
    pub fn counters(&self) -> ServiceCounters {
        self.shared.counters()
    }

    /// Requests served on this connection handle alone.
    pub fn conn_counters(&self) -> ServiceCounters {
        self.conn
    }

    /// The warm report store, when memoization is enabled.
    pub fn report_store(&self) -> Option<&ReportStore> {
        self.shared.report_store.as_ref()
    }

    /// The warm trace store, when persistent traces are enabled.
    pub fn trace_store(&self) -> Option<&TraceStore> {
        self.shared.trace_store.as_ref()
    }

    /// Best-effort persistence of tier counters into the report dir.
    pub fn persist_counters(&self) {
        self.shared.persist_counters();
    }

    fn note(&mut self, served: Served) {
        let (conn_field, shared_field) = match served {
            Served::Computed => (&mut self.conn.computed, &self.shared.counters.computed),
            Served::Memoized => (&mut self.conn.memoized, &self.shared.counters.memoized),
            Served::Hot => (&mut self.conn.hot, &self.shared.counters.hot),
            Served::Coalesced => (&mut self.conn.coalesced, &self.shared.counters.coalesced),
            Served::Busy => (&mut self.conn.busy, &self.shared.counters.busy),
            Served::Error => (&mut self.conn.errors, &self.shared.counters.errors),
            Served::Deadline => (&mut self.conn.deadlines, &self.shared.counters.deadlines),
        };
        *conn_field += 1;
        shared_field.fetch_add(1, Ordering::Relaxed);
    }

    /// Serves one request line. Blank lines yield `None`; everything else
    /// yields exactly one response line (without trailing newline).
    pub fn handle_line(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let req: ServeRequest = match serde_json::from_str(line) {
            Ok(req) => req,
            Err(e) => {
                self.note(Served::Error);
                return Some(err_line("", &format!("unparseable request: {e}")));
            }
        };
        Some(self.handle_request(&req))
    }

    fn handle_request(&mut self, req: &ServeRequest) -> String {
        match req.kind.as_str() {
            "ping" => {
                // Liveness only: no digest, no tiers, no compute — safe
                // for health checks and chaos harnesses at any frequency.
                let body = format!(
                    "{{\"kind\":\"ping\",\"version\":{},\"uptime_ms\":{}}}",
                    json_str(env!("CARGO_PKG_VERSION")),
                    self.shared.uptime().as_millis()
                );
                return ok_line(&req.id, "computed", 0, &body);
            }
            "stats" => {
                let body = serde_json::to_string(&self.stats_body())
                    .unwrap_or_else(|_| "{}".to_string());
                self.shared.persist_counters();
                return ok_line(&req.id, "computed", 0, &body);
            }
            "shutdown" => {
                // Persistence happens once, at the end of the transport
                // loop, after the graceful drain — not here, where racing
                // handlers would snapshot a moving target.
                self.shared.shutdown.store(true, Ordering::SeqCst);
                return ok_line(&req.id, "computed", 0, "{\"kind\":\"shutdown\"}");
            }
            _ => {}
        }
        let started = Instant::now();
        let response = self.run_request(req, &started);
        lock_latency(&self.shared.latency)
            .service_wall_us
            .push(started.elapsed().as_micros() as u64);
        response
    }

    /// The tier walk for a run-kind request: hot cache, single-flight,
    /// disk store, compute (behind admission).
    fn run_request(&mut self, req: &ServeRequest, started: &Instant) -> String {
        // Permits and flight leaderships borrow the shared core; holding
        // them through the per-connection counter updates needs a borrow
        // that is independent of `self`.
        let shared = Arc::clone(&self.shared);
        let resolved = match req.resolve() {
            Ok(r) => r,
            Err(e) => {
                self.note(Served::Error);
                return err_line(&req.id, &e);
            }
        };
        let digest = request_digest(&resolved);
        if !resolved.memoize {
            // Fault sweeps and opted-out requests: the run is the product,
            // so no tier may answer for it — but it still pays admission.
            let permit = match shared.admission.admit() {
                Ok(permit) => permit,
                Err(busy) => {
                    self.note(Served::Busy);
                    return busy_line(&req.id, busy.in_flight, busy.queued);
                }
            };
            lock_latency(&shared.latency)
                .queue_wait_us
                .push(started.elapsed().as_micros() as u64);
            let computed = self.compute_body(&resolved, &digest);
            drop(permit);
            return match computed {
                Ok(body) => {
                    self.note(Served::Computed);
                    ok_line(&req.id, "computed", started.elapsed().as_millis(), &body)
                }
                Err(ComputeFailure::Deadline) => {
                    self.note(Served::Deadline);
                    deadline_line(&req.id)
                }
                Err(ComputeFailure::Error(message)) => {
                    self.note(Served::Error);
                    err_line(&req.id, &message)
                }
            };
        }
        if let Some(hot) = &shared.hot {
            if let Some(body) = lock_hot(hot).get(&digest) {
                self.note(Served::Hot);
                return ok_line(&req.id, "hot", started.elapsed().as_millis(), &body);
            }
        }
        let leader = match shared.flights.join(digest) {
            Joined::Follower(follower) => {
                return match follower.wait() {
                    Ok(body) => {
                        self.note(Served::Coalesced);
                        ok_line(&req.id, "coalesced", started.elapsed().as_millis(), &body)
                    }
                    Err(FlightFailure::Busy { in_flight, queued }) => {
                        self.note(Served::Busy);
                        busy_line(&req.id, in_flight, queued)
                    }
                    Err(FlightFailure::Error(message)) => {
                        self.note(Served::Error);
                        err_line(&req.id, &message)
                    }
                    Err(FlightFailure::DeadlineExceeded) => {
                        self.note(Served::Deadline);
                        deadline_line(&req.id)
                    }
                    Err(FlightFailure::Abandoned) => {
                        self.note(Served::Error);
                        err_line(&req.id, "in-flight computation was abandoned; retry")
                    }
                };
            }
            Joined::Leader(leader) => leader,
        };
        if let Some(store) = &shared.report_store {
            if let Some(payload) = store.load(&digest) {
                // Stored payloads are the canonical UTF-8 body; a
                // defective one already missed inside `load`.
                if let Ok(body) = String::from_utf8(payload) {
                    self.promote_to_hot(&digest, &body);
                    leader.publish(Ok(body.clone()));
                    self.note(Served::Memoized);
                    return ok_line(&req.id, "memoized", started.elapsed().as_millis(), &body);
                }
            }
        }
        let permit = match shared.admission.admit() {
            Ok(permit) => permit,
            Err(busy) => {
                leader.publish(Err(FlightFailure::Busy {
                    in_flight: busy.in_flight,
                    queued: busy.queued,
                }));
                self.note(Served::Busy);
                return busy_line(&req.id, busy.in_flight, busy.queued);
            }
        };
        lock_latency(&shared.latency)
            .queue_wait_us
            .push(started.elapsed().as_micros() as u64);
        let computed = self.compute_body(&resolved, &digest);
        drop(permit);
        match computed {
            Ok(body) => {
                if let Some(store) = &shared.report_store {
                    if let Err(e) = store.save(
                        &digest,
                        body.as_bytes(),
                        resolved.kind.name(),
                        &resolved.workload_name(),
                    ) {
                        // Memoization is an accelerator: a failed save costs
                        // the next identical request a recompute, nothing else.
                        eprintln!("report-store: save failed ({e}); continuing unmemoized");
                    }
                }
                self.promote_to_hot(&digest, &body);
                leader.publish(Ok(body.clone()));
                self.note(Served::Computed);
                ok_line(&req.id, "computed", started.elapsed().as_millis(), &body)
            }
            Err(ComputeFailure::Deadline) => {
                leader.publish(Err(FlightFailure::DeadlineExceeded));
                self.note(Served::Deadline);
                deadline_line(&req.id)
            }
            Err(ComputeFailure::Error(message)) => {
                leader.publish(Err(FlightFailure::Error(message.clone())));
                self.note(Served::Error);
                err_line(&req.id, &message)
            }
        }
    }

    fn promote_to_hot(&self, digest: &[u8; 32], body: &str) {
        if let Some(hot) = &self.shared.hot {
            lock_hot(hot).insert(*digest, body);
        }
    }

    fn compute_body(
        &self,
        resolved: &ResolvedRequest,
        digest: &[u8; 32],
    ) -> Result<String, ComputeFailure> {
        let (mut jobs, rows) = resolved.jobs();
        share_traces_with_store(&mut jobs, self.shared.trace_store.as_ref());
        let workers = if self.shared.jobs == 0 { default_jobs() } else { self.shared.jobs };
        let outcomes = run_jobs_with(jobs, workers, self.shared.policy, &|_, _| {});
        let mut row_bodies = Vec::with_capacity(outcomes.len());
        for (outcome, meta) in outcomes.into_iter().zip(rows) {
            match &outcome {
                // A partial batch must never become a body: one row past
                // the deadline poisons the whole response.
                JobOutcome::DeadlineExceeded { .. } => return Err(ComputeFailure::Deadline),
                JobOutcome::Panicked { label, message, .. } => {
                    return Err(ComputeFailure::Error(format!(
                        "job `{label}` failed after retries: {message}"
                    )));
                }
                _ => {}
            }
            let Some(result) = outcome.into_result() else { continue };
            row_bodies.push(RowBody {
                scheme: meta.scheme.label().to_string(),
                consistency: meta.consistency,
                report: result.report,
            });
        }
        let body = RunBody {
            kind: resolved.kind.name().to_string(),
            workload: resolved.workload_name(),
            digest: digest_hex(digest),
            rows: row_bodies,
        };
        serde_json::to_string(&body).map_err(|_| {
            ComputeFailure::Error("internal error: body serialization failed".to_string())
        })
    }

    fn stats_body(&self) -> StatsBody {
        let shared = &*self.shared;
        let report_store = match &shared.report_store {
            Some(s) => {
                let c = s.counters();
                ReportStoreStats {
                    enabled: true,
                    root: s.root().display().to_string(),
                    entries: s.entries().len() as u64,
                    total_bytes: s.total_bytes(),
                    hits: c.hits,
                    misses: c.misses,
                    stores: c.stores,
                    bytes_read: c.bytes_read,
                    load_failures: c.load_failures,
                }
            }
            None => ReportStoreStats {
                enabled: false,
                root: String::new(),
                entries: 0,
                total_bytes: 0,
                hits: 0,
                misses: 0,
                stores: 0,
                bytes_read: 0,
                load_failures: 0,
            },
        };
        let trace_store = match &shared.trace_store {
            Some(s) => {
                let c = s.counters();
                TraceStoreStats {
                    enabled: true,
                    root: s.root().display().to_string(),
                    hits: c.hits,
                    misses: c.misses,
                    bytes_mapped: c.bytes_mapped,
                    load_failures: c.load_failures,
                }
            }
            None => TraceStoreStats {
                enabled: false,
                root: String::new(),
                hits: 0,
                misses: 0,
                bytes_mapped: 0,
                load_failures: 0,
            },
        };
        let hot_cache = match &shared.hot {
            Some(hot) => {
                let hot = lock_hot(hot);
                let c = hot.counters();
                HotCacheStats {
                    enabled: true,
                    entries: hot.len() as u64,
                    total_bytes: hot.total_bytes(),
                    max_bytes: hot.max_bytes(),
                    hits: c.hits,
                    misses: c.misses,
                    insertions: c.insertions,
                    evictions: c.evictions,
                }
            }
            None => HotCacheStats {
                enabled: false,
                entries: 0,
                total_bytes: 0,
                max_bytes: 0,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
            },
        };
        let admission_counters = shared.admission.counters();
        let latency = lock_latency(&shared.latency);
        StatsBody {
            kind: "stats".to_string(),
            requests: shared.counters.snapshot(),
            max_connections: shared.max_connections as u64,
            active_connections: shared.active_connections() as u64,
            uptime_ms: shared.uptime().as_millis() as u64,
            report_store,
            trace_store,
            hot_cache,
            single_flight: SingleFlightStats {
                led: shared.flights.led(),
                coalesced: shared.flights.coalesced(),
                in_flight: shared.flights.in_flight() as u64,
            },
            admission: AdmissionStats {
                max_in_flight: shared.admission.max_in_flight() as u64,
                max_queue: shared.admission.max_queue() as u64,
                in_flight: shared.admission.in_flight() as u64,
                queued: shared.admission.queued() as u64,
                admitted: admission_counters.admitted,
                rejected: admission_counters.rejected,
            },
            latency: LatencyStats {
                samples: latency.service_wall_us.len() as u64,
                queue_wait_p50_us: latency.queue_wait_us.percentile(0.50),
                queue_wait_p99_us: latency.queue_wait_us.percentile(0.99),
                service_wall_p50_us: latency.service_wall_us.percentile(0.50),
                service_wall_p99_us: latency.service_wall_us.percentile(0.99),
            },
        }
    }
}

/// Serves JSON-lines requests from `input` to `output` until EOF or a
/// `shutdown` request; the core of the stdin transport (the socket
/// transports layer read timeouts, idle deadlines and line bounds on top
/// so they can observe a shutdown raised on a *different* connection —
/// see [`crate::transport`]). Like the socket transports, tier counters
/// are persisted once, when the conversation ends.
pub fn serve_io(
    service: &mut Service,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if let Some(response) = service.handle_line(&line) {
            output.write_all(response.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        }
        if service.shutdown_requested() {
            break;
        }
    }
    service.persist_counters();
    Ok(())
}

/// The stdin transport: requests on stdin, responses on stdout, one line
/// each, until EOF or `shutdown`. This is what CI's serve-smoke drives.
pub fn serve_stdin(service: &mut Service) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_io(service, stdin.lock(), stdout.lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("pomtlb-serve-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn quick(id: &str, kind: &str) -> String {
        format!(
            "{{\"id\":\"{id}\",\"kind\":\"{kind}\",\"workload\":\"gups\",\
             \"cores\":2,\"refs\":1500,\"warmup\":500}}"
        )
    }

    fn body_of(response: &str) -> String {
        let v: serde::Value = serde_json::from_str(response).expect("response parses");
        serde_json::to_string(&v["body"]).expect("body serializes")
    }

    #[test]
    fn blank_lines_are_ignored() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        assert!(svc.handle_line("").is_none());
        assert!(svc.handle_line("   ").is_none());
    }

    #[test]
    fn parse_and_resolve_errors_are_error_lines() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let r = svc.handle_line("this is not json").expect("response");
        assert!(r.contains("\"ok\":false"));
        let r = svc
            .handle_line("{\"id\":\"x\",\"kind\":\"sim\",\"workload\":\"nope\"}")
            .expect("response");
        assert!(r.contains("\"ok\":false") && r.contains("unknown workload"));
        assert_eq!(svc.counters().errors, 2);
    }

    #[test]
    fn sim_without_stores_computes_then_serves_hot() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let a = svc.handle_line(&quick("a", "sim")).expect("response");
        let b = svc.handle_line(&quick("b", "sim")).expect("response");
        assert!(a.contains("\"provenance\":\"computed\""));
        assert!(b.contains("\"provenance\":\"hot\""), "hot tier needs no disk store");
        assert_eq!(body_of(&a), body_of(&b), "same request, same body");
        let counters = svc.counters();
        assert_eq!((counters.computed, counters.hot), (1, 1));
    }

    #[test]
    fn hot_tier_disabled_computes_every_time() {
        let cfg = ServeConfig { hot_max_bytes: 0, ..Default::default() };
        let mut svc = Service::new(cfg).expect("service");
        let a = svc.handle_line(&quick("a", "sim")).expect("response");
        let b = svc.handle_line(&quick("b", "sim")).expect("response");
        assert!(a.contains("\"provenance\":\"computed\""));
        assert!(b.contains("\"provenance\":\"computed\""));
        assert_eq!(body_of(&a), body_of(&b), "same request, same body");
        assert_eq!(svc.counters().computed, 2);
    }

    #[test]
    fn warm_tiers_are_byte_identical_hot_in_process_memoized_across_handles() {
        let dir = TempDir::new("memo");
        let cfg = ServeConfig { report_dir: Some(dir.0.join("reports")), ..Default::default() };
        let mut svc = Service::new(cfg.clone()).expect("service");
        let cold = svc.handle_line(&quick("c1", "compare")).expect("response");
        let warm = svc.handle_line(&quick("c2", "compare")).expect("response");
        assert!(cold.contains("\"provenance\":\"computed\""));
        assert!(warm.contains("\"provenance\":\"hot\""), "in-process repeat hits the hot tier");
        assert_eq!(body_of(&cold), body_of(&warm));
        let counters = svc.counters();
        assert_eq!((counters.computed, counters.hot), (1, 1));
        // A fresh service over the same report dir has a cold hot-cache:
        // the disk tier answers, byte-identically.
        let mut fresh = Service::new(cfg).expect("fresh service");
        let memo = fresh.handle_line(&quick("c3", "compare")).expect("response");
        assert!(memo.contains("\"provenance\":\"memoized\""));
        assert_eq!(body_of(&cold), body_of(&memo));
        assert_eq!(fresh.counters().memoized, 1);
    }

    #[test]
    fn consolidation_requests_compute_and_memoize() {
        let dir = TempDir::new("consmemo");
        let cfg = ServeConfig { report_dir: Some(dir.0.join("reports")), ..Default::default() };
        let mut svc = Service::new(cfg.clone()).expect("service");
        let line = "{\"id\":\"k1\",\"kind\":\"consolidation\",\"vms\":40,\
                    \"cores\":2,\"refs\":1500,\"warmup\":500}";
        let cold = svc.handle_line(line).expect("response");
        assert!(cold.contains("\"provenance\":\"computed\""), "cold response computes: {cold}");
        assert!(cold.contains("consolidation-40vm"), "body names the tenant-mix workload");
        assert!(cold.contains("\"tenancy\""), "rows carry the per-tenant QoS section");
        // A fresh handle over the same report dir answers byte-identically
        // from disk — consolidation runs are deterministic and memoizable.
        let mut fresh = Service::new(cfg).expect("fresh service");
        let memo = fresh.handle_line(line).expect("response");
        assert!(memo.contains("\"provenance\":\"memoized\""));
        assert_eq!(body_of(&cold), body_of(&memo));
        // The generic event knobs are refused, not silently ignored.
        let bad = "{\"id\":\"k2\",\"kind\":\"consolidation\",\"unmaps_per_10k\":5}";
        let err = fresh.handle_line(bad).expect("response");
        assert!(err.contains("\"ok\":false"), "event knobs conflict: {err}");
    }

    #[test]
    fn fault_sweep_never_memoizes() {
        let dir = TempDir::new("faultmemo");
        let cfg = ServeConfig { report_dir: Some(dir.0.join("reports")), ..Default::default() };
        let mut svc = Service::new(cfg).expect("service");
        let a = svc.handle_line(&quick("f1", "fault-sweep")).expect("response");
        let b = svc.handle_line(&quick("f2", "fault-sweep")).expect("response");
        assert!(a.contains("\"provenance\":\"computed\""));
        assert!(b.contains("\"provenance\":\"computed\""));
        assert_eq!(svc.counters().memoized, 0);
        assert_eq!(svc.counters().hot, 0, "fault sweeps skip the hot tier too");
        assert_eq!(svc.report_store().expect("store").counters().stores, 0);
    }

    #[test]
    fn stats_and_shutdown_round_trip() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let r = svc.handle_line("{\"id\":\"s\",\"kind\":\"stats\"}").expect("response");
        assert!(r.contains("\"ok\":true") && r.contains("\"requests\""));
        assert!(r.contains("\"hot_cache\"") && r.contains("\"single_flight\""));
        assert!(r.contains("\"admission\"") && r.contains("\"latency\""));
        assert!(!svc.shutdown_requested());
        let r = svc.handle_line("{\"id\":\"q\",\"kind\":\"shutdown\"}").expect("response");
        assert!(r.contains("\"ok\":true"));
        assert!(svc.shutdown_requested());
    }

    #[test]
    fn connection_handles_share_warm_state_and_shutdown() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let mut conn = svc.connection();
        let a = svc.handle_line(&quick("a", "sim")).expect("response");
        let b = conn.handle_line(&quick("b", "sim")).expect("response");
        assert!(a.contains("\"provenance\":\"computed\""));
        assert!(b.contains("\"provenance\":\"hot\""), "tiers are shared across handles");
        assert_eq!(body_of(&a), body_of(&b));
        let total = svc.counters();
        assert_eq!((total.computed, total.hot), (1, 1), "counters aggregate");
        assert_eq!(conn.conn_counters().hot, 1);
        assert_eq!(conn.conn_counters().computed, 0);
        conn.handle_line("{\"id\":\"q\",\"kind\":\"shutdown\"}").expect("response");
        assert!(svc.shutdown_requested(), "shutdown raised anywhere is seen everywhere");
    }

    #[test]
    fn stats_persist_tier_counters_for_the_cli() {
        let dir = TempDir::new("persist");
        let reports = dir.0.join("reports");
        let cfg = ServeConfig { report_dir: Some(reports.clone()), ..Default::default() };
        let mut svc = Service::new(cfg).expect("service");
        svc.handle_line(&quick("a", "sim")).expect("response");
        svc.handle_line(&quick("b", "sim")).expect("response");
        svc.handle_line("{\"id\":\"s\",\"kind\":\"stats\"}").expect("response");
        let snapshot = TierSnapshot::load(&reports).expect("snapshot written");
        assert_eq!((snapshot.computed, snapshot.hot), (1, 1));
        assert_eq!(snapshot.flights_led, 1);
    }

    #[test]
    fn serve_io_answers_in_order_and_stops_on_shutdown() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let script = format!(
            "{}\n{{\"id\":\"s\",\"kind\":\"stats\"}}\n{{\"id\":\"q\",\"kind\":\"shutdown\"}}\n{}\n",
            quick("r1", "sim"),
            quick("never", "sim"),
        );
        let mut out = Vec::new();
        serve_io(&mut svc, script.as_bytes(), &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "the post-shutdown request is never served");
        assert!(lines[0].contains("\"id\":\"r1\""));
        assert!(lines[1].contains("\"id\":\"s\""));
        assert!(lines[2].contains("\"id\":\"q\""));
    }

    #[test]
    fn ping_answers_version_and_uptime_without_compute() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let r = svc.handle_line("{\"id\":\"p\",\"kind\":\"ping\"}").expect("response");
        assert!(r.contains("\"ok\":true"), "{r}");
        assert!(r.contains("\"kind\":\"ping\""));
        assert!(r.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))));
        assert!(r.contains("\"uptime_ms\":"));
        let counters = svc.counters();
        assert_eq!(counters, ServiceCounters::default(), "ping touches no tier counter");
    }

    #[test]
    fn deadline_zero_answers_typed_deadline_exceeded() {
        let cfg = ServeConfig {
            policy: RunPolicy::with_deadline(std::time::Duration::ZERO),
            ..Default::default()
        };
        let mut svc = Service::new(cfg).expect("service");
        let r = svc.handle_line(&quick("d", "sim")).expect("response");
        assert!(r.contains("\"ok\":false"), "{r}");
        assert!(r.contains("\"deadline_exceeded\":true"), "{r}");
        assert_eq!(svc.counters().deadlines, 1);
        assert_eq!(svc.counters().computed, 0, "nothing was computed");
        assert_eq!(
            svc.shared().flights().in_flight(),
            0,
            "the flight resolved; no leadership leaked"
        );
        assert_eq!(svc.shared().admission().in_flight(), 0, "no permit leaked");
    }
}
