//! The long-lived sweep service: warm state, request dispatch, transports.
//!
//! A [`Service`] owns the state that used to die with every CLI
//! invocation: one warm [`TraceStore`] handle (input streams), one
//! [`ReportStore`] handle (memoized response bodies), and one run policy
//! for the worker pool. [`Service::handle_line`] maps one request line to
//! one response line; [`serve_stdin`] and [`serve_unix`] are thin
//! transports around that mapping, so every behaviour is testable without
//! sockets or processes.
//!
//! # Response lines
//!
//! One JSON object per request, in request order:
//!
//! ```text
//! {"id":"c1","ok":true,"provenance":"computed","wall_ms":412,"body":{...}}
//! {"id":"c2","ok":true,"provenance":"memoized","wall_ms":1,"body":{...}}
//! {"id":"c3","ok":false,"error":"unknown workload `nope`; known: ..."}
//! ```
//!
//! `provenance` says where the body came from: `"computed"` (simulated
//! this request, possibly stored) or `"memoized"` (served from the report
//! store). A memoized `body` is spliced into the response line *verbatim*
//! from the stored payload — not re-serialized — so it is byte-identical
//! to the computed body it memoizes, by construction.
//!
//! # What is never memoized
//!
//! Error responses (they describe the request, not a result) and
//! `fault-sweep` bodies (the fault plan's interaction with retries makes
//! the run itself the product — see [`crate::ServeRequest`]'s `no_memoize`
//! and [`ResolvedRequest::memoize`](crate::ResolvedRequest)).

use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::time::Instant;

use pom_tlb::{
    default_jobs, run_jobs_with, share_traces_with_store, JobOutcome, RunPolicy, SimReport,
};
use pomtlb_trace::digest::digest_hex;
use pomtlb_trace::TraceStore;
use serde::Serialize;

use crate::report_store::{ReportStore, DEFAULT_REPORT_MAX_BYTES};
use crate::request::{request_digest, ServeRequest};

/// How to stand up a [`Service`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Trace-store directory for warm input streams (`None` = generate
    /// live, share within each batch only).
    pub trace_dir: Option<PathBuf>,
    /// Report-store directory for memoized bodies (`None` = memoization
    /// off; every request computes).
    pub report_dir: Option<PathBuf>,
    /// Report-store garbage-collection cap in bytes.
    pub report_max_bytes: u64,
    /// Worker threads per batch (0 = one per available core).
    pub jobs: usize,
    /// Retry/timeout policy for simulation jobs.
    pub policy: RunPolicy,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            trace_dir: None,
            report_dir: None,
            report_max_bytes: DEFAULT_REPORT_MAX_BYTES,
            jobs: 0,
            policy: RunPolicy::default(),
        }
    }
}

/// Per-service request counters, by response provenance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServiceCounters {
    /// Requests answered by running simulations.
    pub computed: u64,
    /// Requests answered from the report store.
    pub memoized: u64,
    /// Requests answered with an error line.
    pub errors: u64,
}

#[derive(Serialize)]
struct RowBody {
    scheme: String,
    consistency: Option<bool>,
    report: SimReport,
}

#[derive(Serialize)]
struct RunBody {
    kind: String,
    workload: String,
    digest: String,
    rows: Vec<RowBody>,
}

#[derive(Serialize)]
struct ReportStoreStats {
    enabled: bool,
    root: String,
    entries: u64,
    total_bytes: u64,
    hits: u64,
    misses: u64,
    stores: u64,
    bytes_read: u64,
    load_failures: u64,
}

#[derive(Serialize)]
struct TraceStoreStats {
    enabled: bool,
    root: String,
    hits: u64,
    misses: u64,
    bytes_mapped: u64,
    load_failures: u64,
}

#[derive(Serialize)]
struct StatsBody {
    kind: String,
    requests: ServiceCounters,
    report_store: ReportStoreStats,
    trace_store: TraceStoreStats,
}

fn json_str(s: &str) -> String {
    serde_json::to_string(&s).unwrap_or_else(|_| "\"\"".to_string())
}

/// One response line with a body (`body_json` is spliced in verbatim —
/// this is what makes memoized bodies byte-identical to computed ones).
fn ok_line(id: &str, provenance: &str, wall_ms: u128, body_json: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"provenance\":\"{provenance}\",\"wall_ms\":{wall_ms},\"body\":{body_json}}}",
        json_str(id)
    )
}

fn err_line(id: &str, message: &str) -> String {
    format!("{{\"id\":{},\"ok\":false,\"error\":{}}}", json_str(id), json_str(message))
}

/// The daemon's warm state: stores, policy, counters. One instance serves
/// many requests; construction is the only expensive step.
#[derive(Debug)]
pub struct Service {
    trace_store: Option<TraceStore>,
    report_store: Option<ReportStore>,
    jobs: usize,
    policy: RunPolicy,
    counters: ServiceCounters,
    shutdown: bool,
}

impl Service {
    /// Opens the configured stores and builds a ready service.
    pub fn new(cfg: ServeConfig) -> io::Result<Service> {
        let trace_store = cfg.trace_dir.map(TraceStore::open).transpose()?;
        let report_store = cfg
            .report_dir
            .map(ReportStore::open)
            .transpose()?
            .map(|s| s.with_max_bytes(cfg.report_max_bytes));
        Ok(Service {
            trace_store,
            report_store,
            jobs: cfg.jobs,
            policy: cfg.policy,
            counters: ServiceCounters::default(),
            shutdown: false,
        })
    }

    /// Whether a `shutdown` request has been served.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Requests served so far, by provenance.
    pub fn counters(&self) -> ServiceCounters {
        self.counters
    }

    /// The warm report store, when memoization is enabled.
    pub fn report_store(&self) -> Option<&ReportStore> {
        self.report_store.as_ref()
    }

    /// The warm trace store, when persistent traces are enabled.
    pub fn trace_store(&self) -> Option<&TraceStore> {
        self.trace_store.as_ref()
    }

    /// Serves one request line. Blank lines yield `None`; everything else
    /// yields exactly one response line (without trailing newline).
    pub fn handle_line(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let req: ServeRequest = match serde_json::from_str(line) {
            Ok(req) => req,
            Err(e) => {
                self.counters.errors += 1;
                return Some(err_line("", &format!("unparseable request: {e}")));
            }
        };
        Some(self.handle_request(&req))
    }

    fn handle_request(&mut self, req: &ServeRequest) -> String {
        match req.kind.as_str() {
            "stats" => {
                let body = serde_json::to_string(&self.stats_body())
                    .unwrap_or_else(|_| "{}".to_string());
                return ok_line(&req.id, "computed", 0, &body);
            }
            "shutdown" => {
                self.shutdown = true;
                return ok_line(&req.id, "computed", 0, "{\"kind\":\"shutdown\"}");
            }
            _ => {}
        }
        let started = Instant::now();
        let resolved = match req.resolve() {
            Ok(r) => r,
            Err(e) => {
                self.counters.errors += 1;
                return err_line(&req.id, &e);
            }
        };
        let digest = request_digest(&resolved);
        if resolved.memoize {
            if let Some(store) = &self.report_store {
                if let Some(payload) = store.load(&digest) {
                    // Stored payloads are the canonical UTF-8 body; a
                    // defective one already missed inside `load`.
                    if let Ok(body) = String::from_utf8(payload) {
                        self.counters.memoized += 1;
                        return ok_line(
                            &req.id,
                            "memoized",
                            started.elapsed().as_millis(),
                            &body,
                        );
                    }
                }
            }
        }

        let (mut jobs, rows) = resolved.jobs();
        share_traces_with_store(&mut jobs, self.trace_store.as_ref());
        let workers = if self.jobs == 0 { default_jobs() } else { self.jobs };
        let outcomes = run_jobs_with(jobs, workers, self.policy, &|_, _| {});
        let mut row_bodies = Vec::with_capacity(outcomes.len());
        for (outcome, meta) in outcomes.into_iter().zip(rows) {
            if let JobOutcome::Panicked { label, message, .. } = &outcome {
                self.counters.errors += 1;
                return err_line(
                    &req.id,
                    &format!("job `{label}` failed after retries: {message}"),
                );
            }
            let Some(result) = outcome.into_result() else { continue };
            row_bodies.push(RowBody {
                scheme: meta.scheme.label().to_string(),
                consistency: meta.consistency,
                report: result.report,
            });
        }
        let body = RunBody {
            kind: resolved.kind.name().to_string(),
            workload: resolved.workload.name.to_string(),
            digest: digest_hex(&digest),
            rows: row_bodies,
        };
        let Ok(body_json) = serde_json::to_string(&body) else {
            self.counters.errors += 1;
            return err_line(&req.id, "internal error: body serialization failed");
        };
        if resolved.memoize {
            if let Some(store) = &self.report_store {
                if let Err(e) = store.save(
                    &digest,
                    body_json.as_bytes(),
                    resolved.kind.name(),
                    resolved.workload.name,
                ) {
                    // Memoization is an accelerator: a failed save costs
                    // the next identical request a recompute, nothing else.
                    eprintln!("report-store: save failed ({e}); continuing unmemoized");
                }
            }
        }
        self.counters.computed += 1;
        ok_line(&req.id, "computed", started.elapsed().as_millis(), &body_json)
    }

    fn stats_body(&self) -> StatsBody {
        let report_store = match &self.report_store {
            Some(s) => {
                let c = s.counters();
                ReportStoreStats {
                    enabled: true,
                    root: s.root().display().to_string(),
                    entries: s.entries().len() as u64,
                    total_bytes: s.total_bytes(),
                    hits: c.hits,
                    misses: c.misses,
                    stores: c.stores,
                    bytes_read: c.bytes_read,
                    load_failures: c.load_failures,
                }
            }
            None => ReportStoreStats {
                enabled: false,
                root: String::new(),
                entries: 0,
                total_bytes: 0,
                hits: 0,
                misses: 0,
                stores: 0,
                bytes_read: 0,
                load_failures: 0,
            },
        };
        let trace_store = match &self.trace_store {
            Some(s) => {
                let c = s.counters();
                TraceStoreStats {
                    enabled: true,
                    root: s.root().display().to_string(),
                    hits: c.hits,
                    misses: c.misses,
                    bytes_mapped: c.bytes_mapped,
                    load_failures: c.load_failures,
                }
            }
            None => TraceStoreStats {
                enabled: false,
                root: String::new(),
                hits: 0,
                misses: 0,
                bytes_mapped: 0,
                load_failures: 0,
            },
        };
        StatsBody {
            kind: "stats".to_string(),
            requests: self.counters,
            report_store,
            trace_store,
        }
    }
}

/// Serves JSON-lines requests from `input` to `output` until EOF or a
/// `shutdown` request; the core of both the stdin transport and the
/// per-connection Unix-socket loop.
pub fn serve_io(
    service: &mut Service,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if let Some(response) = service.handle_line(&line) {
            output.write_all(response.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        }
        if service.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

/// The stdin transport: requests on stdin, responses on stdout, one line
/// each, until EOF or `shutdown`. This is what CI's serve-smoke drives.
pub fn serve_stdin(service: &mut Service) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_io(service, stdin.lock(), stdout.lock())
}

/// The Unix-socket transport: binds `path` (replacing any stale socket
/// file), then serves connections one at a time — each connection is a
/// JSON-lines conversation — until a `shutdown` request arrives. The
/// socket file is removed on clean shutdown.
#[cfg(unix)]
pub fn serve_unix(service: &mut Service, path: &std::path::Path) -> io::Result<()> {
    use std::os::unix::net::UnixListener;
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    eprintln!("pomtlb-serve: listening on {}", path.display());
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = io::BufReader::new(stream.try_clone()?);
        // A dropped connection only ends that conversation, never the
        // daemon: the next accept keeps serving with the same warm state.
        if let Err(e) = serve_io(service, reader, &stream) {
            eprintln!("pomtlb-serve: connection error: {e}");
        }
        if service.shutdown_requested() {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("pomtlb-serve-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn quick(id: &str, kind: &str) -> String {
        format!(
            "{{\"id\":\"{id}\",\"kind\":\"{kind}\",\"workload\":\"gups\",\
             \"cores\":2,\"refs\":1500,\"warmup\":500}}"
        )
    }

    fn body_of(response: &str) -> String {
        let v: serde::Value = serde_json::from_str(response).expect("response parses");
        serde_json::to_string(&v["body"]).expect("body serializes")
    }

    #[test]
    fn blank_lines_are_ignored() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        assert!(svc.handle_line("").is_none());
        assert!(svc.handle_line("   ").is_none());
    }

    #[test]
    fn parse_and_resolve_errors_are_error_lines() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let r = svc.handle_line("this is not json").expect("response");
        assert!(r.contains("\"ok\":false"));
        let r = svc
            .handle_line("{\"id\":\"x\",\"kind\":\"sim\",\"workload\":\"nope\"}")
            .expect("response");
        assert!(r.contains("\"ok\":false") && r.contains("unknown workload"));
        assert_eq!(svc.counters().errors, 2);
    }

    #[test]
    fn sim_without_stores_computes_every_time() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let a = svc.handle_line(&quick("a", "sim")).expect("response");
        let b = svc.handle_line(&quick("b", "sim")).expect("response");
        assert!(a.contains("\"provenance\":\"computed\""));
        assert!(b.contains("\"provenance\":\"computed\""));
        assert_eq!(body_of(&a), body_of(&b), "same request, same body");
        assert_eq!(svc.counters().computed, 2);
    }

    #[test]
    fn memoized_second_pass_is_byte_identical() {
        let dir = TempDir::new("memo");
        let cfg = ServeConfig { report_dir: Some(dir.0.join("reports")), ..Default::default() };
        let mut svc = Service::new(cfg).expect("service");
        let cold = svc.handle_line(&quick("c1", "compare")).expect("response");
        let warm = svc.handle_line(&quick("c2", "compare")).expect("response");
        assert!(cold.contains("\"provenance\":\"computed\""));
        assert!(warm.contains("\"provenance\":\"memoized\""));
        assert_eq!(body_of(&cold), body_of(&warm));
        let counters = svc.counters();
        assert_eq!((counters.computed, counters.memoized), (1, 1));
    }

    #[test]
    fn fault_sweep_never_memoizes() {
        let dir = TempDir::new("faultmemo");
        let cfg = ServeConfig { report_dir: Some(dir.0.join("reports")), ..Default::default() };
        let mut svc = Service::new(cfg).expect("service");
        let a = svc.handle_line(&quick("f1", "fault-sweep")).expect("response");
        let b = svc.handle_line(&quick("f2", "fault-sweep")).expect("response");
        assert!(a.contains("\"provenance\":\"computed\""));
        assert!(b.contains("\"provenance\":\"computed\""));
        assert_eq!(svc.counters().memoized, 0);
        assert_eq!(svc.report_store().expect("store").counters().stores, 0);
    }

    #[test]
    fn stats_and_shutdown_round_trip() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let r = svc.handle_line("{\"id\":\"s\",\"kind\":\"stats\"}").expect("response");
        assert!(r.contains("\"ok\":true") && r.contains("\"requests\""));
        assert!(!svc.shutdown_requested());
        let r = svc.handle_line("{\"id\":\"q\",\"kind\":\"shutdown\"}").expect("response");
        assert!(r.contains("\"ok\":true"));
        assert!(svc.shutdown_requested());
    }

    #[test]
    fn serve_io_answers_in_order_and_stops_on_shutdown() {
        let mut svc = Service::new(ServeConfig::default()).expect("service");
        let script = format!(
            "{}\n{{\"id\":\"s\",\"kind\":\"stats\"}}\n{{\"id\":\"q\",\"kind\":\"shutdown\"}}\n{}\n",
            quick("r1", "sim"),
            quick("never", "sim"),
        );
        let mut out = Vec::new();
        serve_io(&mut svc, script.as_bytes(), &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "the post-shutdown request is never served");
        assert!(lines[0].contains("\"id\":\"r1\""));
        assert!(lines[1].contains("\"id\":\"s\""));
        assert!(lines[2].contains("\"id\":\"q\""));
    }
}
