//! The serve protocol: JSON-lines requests and their canonical digest.
//!
//! One request is one JSON object on one line. The wire shape is a flat
//! struct with CLI-flag names, every knob optional (`0` / `false` / `""`
//! means "default", matching the CLI's defaults), so
//!
//! ```json
//! {"id":"c1","kind":"compare","workload":"gups","cores":2,"refs":5000}
//! ```
//!
//! is a complete request. `kind` selects the batch shape:
//!
//! * `sim` — one scheme (`scheme` knob, default `pom-tlb`),
//! * `compare` — the four-scheme comparison batch,
//! * `consolidation` — the four schemes over a churning multi-tenant
//!   population (`vms`, `churn_destroys_per_10k`, `churn_forks_per_10k`,
//!   `no_churn` knobs; takes no `workload`),
//! * `fault-sweep` — every scheme × consistency {on, off} with seeded
//!   fault injection (never memoized — see [`ResolvedRequest::memoize`]),
//! * `ping` — liveness probe answering version + uptime; never simulates,
//!   never memoizes,
//! * `stats` — service and store counters,
//! * `shutdown` — stop the daemon after responding.
//!
//! # The memoization key
//!
//! [`request_digest`] is the content address a memoized response body is
//! stored under: the shared 4-lane splitmix [`digest256`] over a
//! versioned, canonical byte encoding of everything that influences the
//! body. The encoding embeds the [`TraceKey`] digest (which already
//! covers the workload spec, OS-event rates, seed, core count, sharing
//! mode and total reference budget) and appends the *configuration*
//! dimensions the trace key cannot see: the warmup/measure split, the
//! scheme set, POM-TLB capacity, walk mode, prepopulation, the
//! consistency override, and the fault plan. Request `id`s are expressly
//! *not* part of the digest — identity is semantic, not nominal.

use pom_tlb::{FaultConfig, PomTlbConfig, Scheme, SimConfig, SimJob, SystemConfig};
use pomtlb_tlb::WalkMode;
use pomtlb_trace::digest::digest256;
use pomtlb_trace::{OsEventRates, TraceKey};
use pomtlb_workloads::consolidation::{consolidation_spec, resolve_mix};
use pomtlb_workloads::{by_name, names, PaperWorkload};
use serde::{Deserialize, Serialize};

/// Version of the canonical [`request_digest`] encoding, baked into the
/// digest input so stale digests can never alias new ones. Version 2
/// added the `consolidation` kind (and made the workload optional in the
/// resolved form); the kind tag byte keeps old digests from aliasing.
pub const REQUEST_DIGEST_VERSION: u32 = 2;

/// One wire-format request line. Missing fields deserialize to their
/// zero value, which [`ServeRequest::resolve`] maps to the CLI defaults
/// (8 cores, 40 000 refs, 15 000 warmup, seed `0x90af`, 16 MB POM-TLB,
/// fault seed `0x5eed`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen correlation id, echoed on the response line.
    #[serde(default)]
    pub id: String,
    /// `sim` | `compare` | `consolidation` | `fault-sweep` | `ping` |
    /// `stats` | `shutdown`.
    pub kind: String,
    /// Workload name (see `pomtlb list`); required for run kinds.
    #[serde(default)]
    pub workload: String,
    /// Scheme for `sim` (`baseline` | `pom-tlb` | `pom-uncached` |
    /// `shared-l2` | `tsb`); ignored by the batch kinds.
    #[serde(default)]
    pub scheme: String,
    /// Simulated cores (0 = default 8).
    #[serde(default)]
    pub cores: u64,
    /// Post-warmup references per core (0 = default 40 000).
    #[serde(default)]
    pub refs: u64,
    /// Warmup references per core (0 = default 15 000).
    #[serde(default)]
    pub warmup: u64,
    /// Base RNG seed (0 = default 0x90af).
    #[serde(default)]
    pub seed: u64,
    /// POM-TLB capacity in MB (0 = default 16).
    #[serde(default)]
    pub capacity_mb: u64,
    /// Bare-metal 1-D walks instead of virtualized 2-D.
    #[serde(default)]
    pub native: bool,
    /// Cold-start the in-DRAM structures.
    #[serde(default)]
    pub no_prepopulate: bool,
    /// Force the stale-translation watchdog on.
    #[serde(default)]
    pub check_consistency: bool,
    /// Page-unmap events per 10k refs per core.
    #[serde(default)]
    pub unmaps_per_10k: f64,
    /// Page-remap events per 10k refs per core.
    #[serde(default)]
    pub remaps_per_10k: f64,
    /// THP-promotion events per 10k refs per core.
    #[serde(default)]
    pub promotes_per_10k: f64,
    /// Process-migration events per 10k refs per core.
    #[serde(default)]
    pub migrations_per_10k: f64,
    /// VM-teardown events per 10k refs per core.
    #[serde(default)]
    pub vm_destroys_per_10k: f64,
    /// Fault-plan seed for `fault-sweep` (0 = default 0x5eed).
    #[serde(default)]
    pub fault_seed: u64,
    /// Consolidation tenant count (0 = default 1000, max 65536;
    /// `consolidation` requests only).
    #[serde(default)]
    pub vms: u32,
    /// VM teardowns per 10k refs per core (0 = default 0.5; out-of-domain
    /// values are errors, never clamped).
    #[serde(default)]
    pub churn_destroys_per_10k: f64,
    /// Fork COW storms per 10k refs per core (0 = default 1.0; same
    /// validation).
    #[serde(default)]
    pub churn_forks_per_10k: f64,
    /// Consolidation control arm: static tenant population, no churn.
    #[serde(default)]
    pub no_churn: bool,
    /// Opt this request out of memoization (always compute, never store).
    #[serde(default)]
    pub no_memoize: bool,
}

/// What batch a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// One scheme, one report.
    Sim,
    /// The four-scheme comparison batch.
    Compare,
    /// The four schemes over a churning multi-tenant consolidation
    /// population with per-tenant QoS accounting.
    Consolidation,
    /// Every scheme × consistency {on, off}, fault-armed.
    FaultSweep,
    /// Liveness probe: server version + uptime, no digest, no compute.
    Ping,
    /// Service/store counters; no simulation.
    Stats,
    /// Stop the daemon after responding.
    Shutdown,
}

impl RequestKind {
    fn parse(s: &str) -> Result<RequestKind, String> {
        match s {
            "sim" => Ok(RequestKind::Sim),
            "compare" => Ok(RequestKind::Compare),
            "consolidation" => Ok(RequestKind::Consolidation),
            "fault-sweep" => Ok(RequestKind::FaultSweep),
            "ping" => Ok(RequestKind::Ping),
            "stats" => Ok(RequestKind::Stats),
            "shutdown" => Ok(RequestKind::Shutdown),
            other => Err(format!(
                "unknown kind `{other}` (sim | compare | consolidation | fault-sweep | ping | \
                 stats | shutdown)"
            )),
        }
    }

    /// Wire name, also the digest tag and manifest label.
    pub fn name(&self) -> &'static str {
        match self {
            RequestKind::Sim => "sim",
            RequestKind::Compare => "compare",
            RequestKind::Consolidation => "consolidation",
            RequestKind::FaultSweep => "fault-sweep",
            RequestKind::Ping => "ping",
            RequestKind::Stats => "stats",
            RequestKind::Shutdown => "shutdown",
        }
    }
}

fn parse_scheme(s: &str) -> Result<Scheme, String> {
    match s {
        "" | "pom-tlb" | "pom" => Ok(Scheme::pom_tlb()),
        "baseline" => Ok(Scheme::Baseline),
        "pom-uncached" => Ok(Scheme::pom_tlb_uncached()),
        "shared-l2" => Ok(Scheme::SharedL2),
        "tsb" => Ok(Scheme::Tsb),
        other => Err(format!(
            "unknown scheme `{other}` (baseline | pom-tlb | pom-uncached | shared-l2 | tsb)"
        )),
    }
}

/// The OS event mix `fault-sweep` uses when no event knobs were given:
/// remap-heavy enough that the shootdown-borne fault kinds have real OS
/// events to ride on (same mix as the CLI's `fault-sweep`).
fn fault_sweep_default_events() -> OsEventRates {
    OsEventRates { unmaps: 12.0, remaps: 6.0, promotes: 0.5, migrations: 1.0, vm_destroys: 0.0 }
}

/// One row's identity within a batch body: the scheme plus, for
/// fault-sweep rows, whether the consistency machinery was on.
#[derive(Debug, Clone, Copy)]
pub struct RowMeta {
    /// The row's scheme.
    pub scheme: Scheme,
    /// `Some(on)` for fault-sweep rows; `None` elsewhere.
    pub consistency: Option<bool>,
}

/// Resolved `consolidation` parameters: tenant count plus the churn
/// rates (`None` = the `no_churn` control arm).
#[derive(Debug, Clone, Copy)]
pub struct TenantParams {
    /// Tenant VM count.
    pub vms: u32,
    /// `(destroys_per_10k, fork_storms_per_10k)`, or `None` for no churn.
    pub churn: Option<(f64, f64)>,
}

/// A fully-resolved run request: defaults applied, workload looked up,
/// scheme set expanded. Everything [`request_digest`] hashes and
/// [`ResolvedRequest::jobs`] executes.
#[derive(Debug, Clone)]
pub struct ResolvedRequest {
    /// The batch shape (always a run kind here, never stats/shutdown).
    pub kind: RequestKind,
    /// The paper workload to synthesize; `None` for `consolidation`,
    /// which builds its own tenant-mix spec from [`TenantParams`].
    pub workload: Option<PaperWorkload>,
    /// Consolidation tenant parameters (`None` for the workload kinds).
    pub tenants: Option<TenantParams>,
    /// The scheme set, in batch order.
    pub schemes: Vec<Scheme>,
    /// Run lengths and RNG seed.
    pub sim: SimConfig,
    /// Simulated cores.
    pub cores: usize,
    /// POM-TLB capacity in MB.
    pub capacity_mb: u64,
    /// Bare-metal vs virtualized walks.
    pub native: bool,
    /// Steady-state pre-population.
    pub prepopulate: bool,
    /// Stale-watchdog override (`None` keeps the build default).
    pub check_consistency: Option<bool>,
    /// OS-event rates (fault-sweep substitutes its eventful default mix
    /// when none were given, exactly like the CLI).
    pub events: OsEventRates,
    /// Fault-plan seed (fault-sweep only).
    pub fault_seed: u64,
    /// Whether this request may be answered from / stored into the
    /// report store. Fault-injected runs are **never** memoized: their
    /// value is exercising the machinery live, and the fault plan's
    /// interaction with retries makes "the" report a property of the run,
    /// not of the request. `no_memoize` opts any request out.
    pub memoize: bool,
}

impl ServeRequest {
    /// Applies defaults and validates; `Err` is the operator-facing
    /// message for the error response.
    pub fn resolve(&self) -> Result<ResolvedRequest, String> {
        let kind = RequestKind::parse(&self.kind)?;
        if matches!(kind, RequestKind::Ping | RequestKind::Stats | RequestKind::Shutdown) {
            return Err(format!("kind `{}` carries no run parameters", self.kind));
        }
        let (workload, tenants) = if kind == RequestKind::Consolidation {
            if !self.workload.is_empty() {
                return Err(
                    "`consolidation` builds its own tenant-mix workload; leave `workload` unset"
                        .to_string(),
                );
            }
            // Zero means default and out-of-domain values are errors —
            // the identical resolution the CLI flag path goes through.
            let (vms, destroys, forks) =
                resolve_mix(self.vms, self.churn_destroys_per_10k, self.churn_forks_per_10k)?;
            let churn = if self.no_churn { None } else { Some((destroys, forks)) };
            (None, Some(TenantParams { vms, churn }))
        } else {
            if self.workload.is_empty() {
                return Err("`workload` is required for run requests".to_string());
            }
            let Some(workload) = by_name(&self.workload) else {
                return Err(format!(
                    "unknown workload `{}`; known: {}",
                    self.workload,
                    names().join(" ")
                ));
            };
            (Some(workload), None)
        };
        let schemes = match kind {
            RequestKind::Sim => vec![parse_scheme(&self.scheme)?],
            _ => vec![Scheme::Baseline, Scheme::pom_tlb(), Scheme::SharedL2, Scheme::Tsb],
        };
        let mut events = OsEventRates {
            unmaps: self.unmaps_per_10k,
            remaps: self.remaps_per_10k,
            promotes: self.promotes_per_10k,
            migrations: self.migrations_per_10k,
            vm_destroys: self.vm_destroys_per_10k,
        };
        events.validate()?;
        if kind == RequestKind::Consolidation && events != OsEventRates::default() {
            return Err(
                "`consolidation` drives OS events through its churn mix; the *-per-10k knobs \
                 do not apply"
                    .to_string(),
            );
        }
        if kind == RequestKind::FaultSweep && events == OsEventRates::default() {
            events = fault_sweep_default_events();
        }
        let nz = |v: u64, d: u64| if v == 0 { d } else { v };
        Ok(ResolvedRequest {
            kind,
            workload,
            tenants,
            schemes,
            sim: SimConfig {
                refs_per_core: nz(self.refs, 40_000),
                warmup_per_core: nz(self.warmup, 15_000),
                seed: nz(self.seed, 0x90af),
            },
            cores: nz(self.cores, 8) as usize,
            capacity_mb: nz(self.capacity_mb, 16),
            native: self.native,
            prepopulate: !self.no_prepopulate,
            check_consistency: if self.check_consistency { Some(true) } else { None },
            events,
            fault_seed: nz(self.fault_seed, 0x5eed),
            memoize: kind != RequestKind::FaultSweep && !self.no_memoize,
        })
    }
}

impl ResolvedRequest {
    fn sys_config(&self) -> SystemConfig {
        SystemConfig {
            n_cores: self.cores,
            walk_mode: if self.native { WalkMode::Native } else { WalkMode::Virtualized },
            pom: PomTlbConfig { capacity_bytes: self.capacity_mb << 20, ..Default::default() },
            ..Default::default()
        }
    }

    /// The workload spec with this request's event rates applied — the
    /// spec every job (and the trace key) is built from. `consolidation`
    /// requests synthesize their tenant-mix spec instead of using a
    /// paper workload.
    pub fn spec(&self) -> pomtlb_trace::WorkloadSpec {
        if let Some(t) = self.tenants {
            return consolidation_spec(t.vms, t.churn);
        }
        let w = self.workload.as_ref().expect("run kinds carry a workload");
        let mut spec = w.spec.clone();
        spec.os_events = self.events;
        spec
    }

    /// The label the response body and the report-store manifest record.
    pub fn workload_name(&self) -> String {
        match &self.workload {
            Some(w) => w.name.to_string(),
            None => self.spec().name,
        }
    }

    /// Whether all cores share one guest-physical image. Consolidation
    /// always shares (the tenant population, not the core count, sets
    /// the table footprint); paper workloads follow their suite.
    fn shares_memory(&self) -> bool {
        self.tenants.is_some() || self.workload.as_ref().is_some_and(|w| w.suite.shares_memory())
    }

    /// The key of the one input stream every job in this batch replays
    /// (the scheme never changes the stream, and fault plans perturb
    /// served translations, never the input).
    pub fn trace_key(&self) -> TraceKey {
        TraceKey {
            spec: self.spec(),
            seed: self.sim.seed,
            n_cores: self.cores,
            shared_memory: self.shares_memory(),
            total_refs: (self.sim.warmup_per_core + self.sim.refs_per_core) * self.cores as u64,
        }
    }

    /// The batch, in canonical row order, with per-row identity metadata.
    pub fn jobs(&self) -> (Vec<SimJob>, Vec<RowMeta>) {
        let spec = self.spec();
        let sys = self.sys_config();
        let shared = self.shares_memory();
        let name = self.workload_name();
        let mut jobs = Vec::new();
        let mut rows = Vec::new();
        let mut push = |scheme: Scheme, consistency: Option<bool>, faults: Option<FaultConfig>| {
            let tag = match consistency {
                Some(true) => "/detect-on",
                Some(false) => "/detect-off",
                None => "",
            };
            let mut job = SimJob::new(
                format!("{}/{}{tag}", name, scheme.label()),
                &spec,
                scheme,
                self.sim,
            )
            .with_system_config(sys.clone())
            .shared_memory(shared);
            job.prepopulate = self.prepopulate;
            job.check_consistency = consistency.or(self.check_consistency);
            if let Some(f) = faults {
                job = job.with_faults(f);
            }
            jobs.push(job);
            rows.push(RowMeta { scheme, consistency });
        };
        match self.kind {
            RequestKind::FaultSweep => {
                let faults = FaultConfig { seed: self.fault_seed, ..FaultConfig::default() };
                for consistency in [true, false] {
                    for &scheme in &self.schemes {
                        push(scheme, Some(consistency), Some(faults));
                    }
                }
            }
            _ => {
                for &scheme in &self.schemes {
                    push(scheme, None, None);
                }
            }
        }
        (jobs, rows)
    }
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_scheme(out: &mut Vec<u8>, s: &Scheme) {
    match s {
        Scheme::Baseline => put_u8(out, 0),
        Scheme::SharedL2 => put_u8(out, 1),
        Scheme::Tsb => put_u8(out, 2),
        Scheme::PomTlb { cache_entries, bypass_predictor } => {
            put_u8(out, 3);
            put_u8(out, u8::from(*cache_entries) | (u8::from(*bypass_predictor) << 1));
        }
    }
}

/// The canonical byte encoding of a resolved request, version
/// [`REQUEST_DIGEST_VERSION`]. The [`TraceKey`] digest covers the input
/// stream in full; the remaining fields are the configuration dimensions
/// two requests with the same stream can still differ in.
pub fn request_bytes(r: &ResolvedRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    put_u32(&mut out, REQUEST_DIGEST_VERSION);
    put_u8(
        &mut out,
        match r.kind {
            RequestKind::Sim => 0,
            RequestKind::Compare => 1,
            RequestKind::FaultSweep => 2,
            RequestKind::Consolidation => 3,
            RequestKind::Ping | RequestKind::Stats | RequestKind::Shutdown => 255,
        },
    );
    out.extend_from_slice(&r.trace_key().digest());
    put_u8(&mut out, r.schemes.len() as u8);
    for s in &r.schemes {
        put_scheme(&mut out, s);
    }
    // The trace key only sees warmup + refs as one budget; the split
    // changes what is measured, so both halves go in explicitly.
    put_u64(&mut out, r.sim.refs_per_core);
    put_u64(&mut out, r.sim.warmup_per_core);
    put_u64(&mut out, r.capacity_mb);
    put_u8(&mut out, u8::from(r.native));
    put_u8(&mut out, u8::from(r.prepopulate));
    put_u8(
        &mut out,
        match r.check_consistency {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
    );
    put_u8(&mut out, u8::from(r.kind == RequestKind::FaultSweep));
    put_u64(&mut out, if r.kind == RequestKind::FaultSweep { r.fault_seed } else { 0 });
    out
}

/// [`digest256`] of [`request_bytes`] — the report store's content
/// address for this request's memoized body.
pub fn request_digest(r: &ResolvedRequest) -> [u8; 32] {
    digest256(&request_bytes(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(kind: &str) -> ServeRequest {
        ServeRequest {
            id: "t".into(),
            kind: kind.into(),
            workload: "gups".into(),
            scheme: String::new(),
            cores: 2,
            refs: 4000,
            warmup: 1000,
            seed: 7,
            capacity_mb: 0,
            native: false,
            no_prepopulate: false,
            check_consistency: false,
            unmaps_per_10k: 0.0,
            remaps_per_10k: 0.0,
            promotes_per_10k: 0.0,
            migrations_per_10k: 0.0,
            vm_destroys_per_10k: 0.0,
            fault_seed: 0,
            vms: 0,
            churn_destroys_per_10k: 0.0,
            churn_forks_per_10k: 0.0,
            no_churn: false,
            no_memoize: false,
        }
    }

    /// A consolidation request fixture: no workload, tenant knobs set.
    fn creq() -> ServeRequest {
        ServeRequest { workload: String::new(), vms: 50, ..req("consolidation") }
    }

    #[test]
    fn resolve_applies_cli_defaults() {
        let r = ServeRequest { cores: 0, refs: 0, warmup: 0, seed: 0, ..req("compare") }
            .resolve()
            .expect("resolve");
        assert_eq!(r.cores, 8);
        assert_eq!(r.sim.refs_per_core, 40_000);
        assert_eq!(r.sim.warmup_per_core, 15_000);
        assert_eq!(r.sim.seed, 0x90af);
        assert_eq!(r.capacity_mb, 16);
        assert_eq!(r.schemes.len(), 4);
        assert!(r.prepopulate && r.memoize);
    }

    #[test]
    fn resolve_rejects_bad_input() {
        assert!(ServeRequest { workload: String::new(), ..req("sim") }.resolve().is_err());
        assert!(ServeRequest { workload: "nope".into(), ..req("sim") }.resolve().is_err());
        assert!(ServeRequest { scheme: "nope".into(), ..req("sim") }.resolve().is_err());
        assert!(req("bogus").resolve().is_err());
        assert!(req("stats").resolve().is_err(), "stats carries no run parameters");
        assert!(req("ping").resolve().is_err(), "ping carries no run parameters");
        let msg = req("bogus").resolve().expect_err("bogus kind");
        assert!(msg.contains("ping"), "parse error lists ping: {msg}");
        assert!(
            ServeRequest { unmaps_per_10k: -1.0, ..req("sim") }.resolve().is_err(),
            "negative event rates are rejected"
        );
    }

    #[test]
    fn fault_sweep_is_never_memoized_and_eventful() {
        let r = req("fault-sweep").resolve().expect("resolve");
        assert!(!r.memoize);
        assert!(r.events.remaps > 0.0, "eventful default mix applied");
        assert_eq!(r.fault_seed, 0x5eed);
        let (jobs, rows) = r.jobs();
        assert_eq!(jobs.len(), 8, "four schemes x consistency on/off");
        assert!(jobs.iter().all(|j| j.faults.is_some()));
        assert_eq!(rows.iter().filter(|m| m.consistency == Some(true)).count(), 4);
    }

    #[test]
    fn consolidation_resolves_tenant_params() {
        let r = creq().resolve().expect("resolve");
        assert_eq!(r.kind, RequestKind::Consolidation);
        assert!(r.workload.is_none());
        let t = r.tenants.expect("tenant params");
        assert_eq!(t.vms, 50);
        assert_eq!(t.churn, Some((0.5, 1.0)), "zero churn knobs resolve to the defaults");
        assert!(r.memoize, "consolidation runs are deterministic and memoizable");
        assert_eq!(r.workload_name(), "consolidation-50vm");
        assert_eq!(r.schemes.len(), 4);
        let (jobs, rows) = r.jobs();
        assert_eq!(jobs.len(), 4);
        assert!(rows.iter().all(|m| m.consistency.is_none()));

        let quiet = ServeRequest { no_churn: true, ..creq() }.resolve().expect("resolve");
        assert_eq!(quiet.tenants.expect("tenant params").churn, None);

        let defaulted = ServeRequest { vms: 0, ..creq() }.resolve().expect("resolve");
        assert_eq!(defaulted.tenants.expect("tenant params").vms, 1_000);
    }

    #[test]
    fn consolidation_rejects_conflicting_knobs() {
        assert!(
            ServeRequest { workload: "gups".into(), ..creq() }.resolve().is_err(),
            "consolidation takes no workload"
        );
        assert!(
            ServeRequest { vms: 70_000, ..creq() }.resolve().is_err(),
            "over the VM_ID space is an error, not a clamp"
        );
        assert!(
            ServeRequest { churn_destroys_per_10k: -1.0, ..creq() }.resolve().is_err(),
            "negative churn rates are errors"
        );
        assert!(
            ServeRequest { unmaps_per_10k: 5.0, ..creq() }.resolve().is_err(),
            "the generic event knobs do not apply to consolidation"
        );
    }

    #[test]
    fn no_memoize_opts_out() {
        let r = ServeRequest { no_memoize: true, ..req("compare") }.resolve().expect("resolve");
        assert!(!r.memoize);
    }

    #[test]
    fn digest_is_stable_across_computations() {
        let r = req("compare").resolve().expect("resolve");
        let (a, b) = (request_digest(&r), request_digest(&r));
        assert_eq!(a, b);
        assert_eq!(pomtlb_trace::digest::digest_hex(&a).len(), 64);
        // And stable across independent resolutions of the same wire line.
        let r2 = req("compare").resolve().expect("resolve");
        assert_eq!(request_digest(&r2), a);
    }

    #[test]
    fn digest_distinguishes_every_request_field() {
        let base = req("compare");
        let d0 = request_digest(&base.resolve().expect("resolve"));
        let variants: Vec<ServeRequest> = vec![
            ServeRequest { workload: "mcf".into(), ..base.clone() },
            ServeRequest { cores: 4, ..base.clone() },
            ServeRequest { refs: 4001, ..base.clone() },
            ServeRequest { warmup: 1001, ..base.clone() },
            // Same total budget, different warmup/measure split.
            ServeRequest { refs: 4500, warmup: 500, ..base.clone() },
            ServeRequest { seed: 8, ..base.clone() },
            ServeRequest { capacity_mb: 8, ..base.clone() },
            ServeRequest { native: true, ..base.clone() },
            ServeRequest { no_prepopulate: true, ..base.clone() },
            ServeRequest { check_consistency: true, ..base.clone() },
            ServeRequest { unmaps_per_10k: 5.0, ..base.clone() },
            ServeRequest { kind: "sim".into(), ..base.clone() },
            ServeRequest { kind: "sim".into(), scheme: "baseline".into(), ..base.clone() },
            ServeRequest { kind: "sim".into(), scheme: "pom-uncached".into(), ..base.clone() },
            ServeRequest { kind: "fault-sweep".into(), ..base.clone() },
            ServeRequest { kind: "fault-sweep".into(), fault_seed: 9, ..base.clone() },
            creq(),
            ServeRequest { vms: 51, ..creq() },
            ServeRequest { churn_destroys_per_10k: 2.0, ..creq() },
            ServeRequest { churn_forks_per_10k: 0.5, ..creq() },
            ServeRequest { no_churn: true, ..creq() },
        ];
        let mut digests = vec![d0];
        for v in &variants {
            let d = request_digest(&v.resolve().expect("variant resolves"));
            assert!(!digests.contains(&d), "collision for variant {v:?}");
            digests.push(d);
        }
    }

    #[test]
    fn request_id_is_not_part_of_the_digest() {
        let a = ServeRequest { id: "a".into(), ..req("compare") }.resolve().expect("resolve");
        let b = ServeRequest { id: "b".into(), ..req("compare") }.resolve().expect("resolve");
        assert_eq!(request_digest(&a), request_digest(&b));
        // no_memoize changes caching policy, not identity.
        let c = ServeRequest { no_memoize: true, ..req("compare") }.resolve().expect("resolve");
        assert_eq!(request_digest(&c), request_digest(&a));
    }

    #[test]
    fn wire_line_round_trips() {
        let line = r#"{"id":"c1","kind":"compare","workload":"gups","cores":2,"refs":5000}"#;
        let r: ServeRequest = serde_json::from_str(line).expect("parse");
        assert_eq!(r.id, "c1");
        assert_eq!(r.cores, 2);
        assert_eq!(r.warmup, 0, "missing fields default to zero");
        let resolved = r.resolve().expect("resolve");
        assert_eq!(resolved.sim.warmup_per_core, 15_000, "zero means default");
    }
}
