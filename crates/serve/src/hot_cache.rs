//! The in-memory hot tier in front of the on-disk report store.
//!
//! A disk-memoized hit is already ~3000x cheaper than computing, but it
//! still pays a file read, two checksum passes, and a manifest rewrite
//! (the LRU `touch`) *per hit* — all serialized behind the store's
//! advisory lock under concurrent load. [`HotCache`] keeps the hottest
//! response bodies as ready-to-splice strings keyed by request digest, so
//! a repeated hot request costs one map probe and one clone.
//!
//! Sizing is by **bytes, not entries** (bodies vary from hundreds of
//! bytes to tens of kilobytes): insertion evicts least-recently-used
//! entries until the new body fits under `max_bytes`. A body larger than
//! the whole budget is simply not cached — the disk tier still has it.
//!
//! The cache is a plain single-threaded structure; the service wraps it
//! in a `Mutex`. That is deliberate: the critical section is a probe or
//! an insert (microseconds), and one lock is cheaper and easier to reason
//! about than sharded LRU bookkeeping at this request rate.

use std::collections::HashMap;

/// Default hot-cache budget: 64 MiB of response bodies.
pub const DEFAULT_HOT_MAX_BYTES: u64 = 64 << 20;

/// Fixed per-entry overhead charged against the budget (digest key plus
/// map/recency bookkeeping), so thousands of tiny bodies don't account
/// as free.
const ENTRY_OVERHEAD_BYTES: u64 = 64;

/// Cumulative hot-tier counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotCacheCounters {
    /// Probes that returned a body.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Bodies inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Bytes reclaimed by those evictions (bodies plus overhead).
    pub evicted_bytes: u64,
}

#[derive(Debug)]
struct HotEntry {
    body: String,
    stamp: u64,
}

/// A bounded LRU (by bytes) map from request digest to response body.
/// See the [module docs](self) for the tiering rationale.
#[derive(Debug)]
pub struct HotCache {
    map: HashMap<[u8; 32], HotEntry>,
    max_bytes: u64,
    total_bytes: u64,
    clock: u64,
    counters: HotCacheCounters,
}

fn entry_cost(body: &str) -> u64 {
    body.len() as u64 + ENTRY_OVERHEAD_BYTES
}

impl HotCache {
    /// An empty cache with a `max_bytes` budget (0 admits nothing).
    pub fn new(max_bytes: u64) -> HotCache {
        HotCache {
            map: HashMap::new(),
            max_bytes,
            total_bytes: 0,
            clock: 0,
            counters: HotCacheCounters::default(),
        }
    }

    /// Probes for `digest`; a hit refreshes its recency and returns a
    /// clone of the body.
    pub fn get(&mut self, digest: &[u8; 32]) -> Option<String> {
        self.clock += 1;
        match self.map.get_mut(digest) {
            Some(entry) => {
                entry.stamp = self.clock;
                self.counters.hits += 1;
                Some(entry.body.clone())
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `digest -> body`, evicting least-recently
    /// used entries until it fits. A body bigger than the whole budget is
    /// ignored.
    pub fn insert(&mut self, digest: [u8; 32], body: &str) {
        let cost = entry_cost(body);
        if cost > self.max_bytes {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.map.remove(&digest) {
            self.total_bytes -= entry_cost(&old.body);
        }
        while self.total_bytes + cost > self.max_bytes {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            else {
                break;
            };
            if let Some(evicted) = self.map.remove(&victim) {
                let reclaimed = entry_cost(&evicted.body);
                self.total_bytes -= reclaimed;
                self.counters.evictions += 1;
                self.counters.evicted_bytes += reclaimed;
            }
        }
        self.total_bytes += cost;
        self.counters.insertions += 1;
        self.map.insert(digest, HotEntry { body: body.to_string(), stamp: self.clock });
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The byte budget.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Cumulative counters.
    pub fn counters(&self) -> HotCacheCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(tag: u8) -> [u8; 32] {
        [tag; 32]
    }

    #[test]
    fn hit_returns_the_exact_inserted_bytes() {
        let mut cache = HotCache::new(1 << 20);
        let body = "{\"rows\":[1,2,3],\"digest\":\"abc\"}";
        cache.insert(digest(1), body);
        assert_eq!(cache.get(&digest(1)).as_deref(), Some(body));
        assert_eq!(cache.get(&digest(2)), None);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
    }

    #[test]
    fn eviction_is_least_recently_used_by_bytes() {
        // Budget fits exactly two entries of this size.
        let body = "x".repeat(100);
        let budget = 2 * entry_cost(&body);
        let mut cache = HotCache::new(budget);
        cache.insert(digest(1), &body);
        cache.insert(digest(2), &body);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&digest(1)).is_some());
        cache.insert(digest(3), &body);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&digest(1)).is_some(), "recently used survives");
        assert!(cache.get(&digest(2)).is_none(), "LRU entry was evicted");
        assert!(cache.get(&digest(3)).is_some());
        let c = cache.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.evicted_bytes, entry_cost(&body));
        assert!(cache.total_bytes() <= budget);
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let mut cache = HotCache::new(64);
        cache.insert(digest(1), &"y".repeat(1000));
        assert!(cache.is_empty());
        assert_eq!(cache.total_bytes(), 0);
        assert_eq!(cache.counters().insertions, 0);
    }

    #[test]
    fn reinserting_a_digest_replaces_without_double_charging() {
        let mut cache = HotCache::new(1 << 20);
        cache.insert(digest(5), "short");
        let first = cache.total_bytes();
        cache.insert(digest(5), "a rather longer body than before");
        assert_eq!(cache.len(), 1);
        assert!(cache.total_bytes() > first);
        assert_eq!(
            cache.get(&digest(5)).as_deref(),
            Some("a rather longer body than before")
        );
    }

    #[test]
    fn zero_budget_admits_nothing() {
        let mut cache = HotCache::new(0);
        cache.insert(digest(1), "tiny");
        assert!(cache.is_empty());
    }
}
