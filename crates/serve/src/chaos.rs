//! A deterministic TCP fault-injection proxy for torturing the daemon.
//!
//! [`ChaosProxy`] sits between a client and the serve daemon on
//! loopback and injects the network's greatest hits: abrupt connection
//! resets, torn writes (a partial line followed by a dead socket),
//! byte-level stalls (slow-loris pacing), and constant added latency.
//! Every fault decision is drawn from a splitmix64 stream seeded by
//! `(seed, connection, direction, chunk)` — the same seed replays the
//! same carnage, which is what lets the chaos suite and the CI smoke
//! job pin a seed and assert exact end-state invariants instead of
//! flaky ones.
//!
//! The proxy is intentionally protocol-blind: it forwards opaque byte
//! chunks and injures them without parsing JSON, because real networks
//! don't respect line framing either. The invariants under test live on
//! the other two ends — the daemon must never leak a connection slot,
//! admission permit, or single-flight leadership, and the
//! [`Client`](crate::Client) must either deliver a byte-identical body
//! or a typed error, never a silently corrupted reply.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault rates are expressed per 10 000 forwarded chunks, so integer
/// configs can express 0.01% without floating point.
const FAULT_SCALE: u64 = 10_000;

/// What the proxy injects, and how often.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Per-10k chunk probability of severing both directions abruptly.
    pub reset_per_10k: u32,
    /// Per-10k chunk probability of forwarding only a prefix of the
    /// chunk and then severing — the classic torn line.
    pub torn_write_per_10k: u32,
    /// Per-10k chunk probability of pausing `stall_ms` before
    /// forwarding (slow-loris pacing).
    pub stall_per_10k: u32,
    /// Length of an injected stall.
    pub stall_ms: u64,
    /// Constant latency added to every forwarded chunk.
    pub delay_ms: u64,
}

impl ChaosConfig {
    /// A proxy that forwards faithfully — useful as the control arm.
    pub fn benign(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            reset_per_10k: 0,
            torn_write_per_10k: 0,
            stall_per_10k: 0,
            stall_ms: 0,
            delay_ms: 0,
        }
    }

    /// The default torture profile used by the chaos suite: ~8% resets,
    /// ~5% torn writes, ~10% stalls of 20 ms, 1 ms base latency.
    pub fn stormy(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            reset_per_10k: 800,
            torn_write_per_10k: 500,
            stall_per_10k: 1000,
            stall_ms: 20,
            delay_ms: 1,
        }
    }
}

/// What the proxy did, cumulatively (all [`Ordering::SeqCst`]).
#[derive(Debug, Default)]
struct SharedChaosCounters {
    connections: AtomicU64,
    chunks: AtomicU64,
    resets: AtomicU64,
    torn_writes: AtomicU64,
    stalls: AtomicU64,
}

/// A point-in-time copy of the proxy's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Client connections accepted and paired with an upstream.
    pub connections: u64,
    /// Byte chunks forwarded (either direction), including injured ones.
    pub chunks: u64,
    /// Connections severed abruptly.
    pub resets: u64,
    /// Chunks truncated mid-write before severing.
    pub torn_writes: u64,
    /// Chunks delayed by an injected stall.
    pub stalls: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Which injury (if any) a chunk draws.
enum Fault {
    None,
    Reset,
    Torn,
    Stall,
}

impl ChaosConfig {
    /// Deterministic fault draw for one forwarded chunk.
    fn draw(&self, conn: u64, direction: u64, chunk: u64) -> Fault {
        let noise = splitmix64(
            self.seed ^ conn.rotate_left(24) ^ direction.rotate_left(48) ^ chunk,
        );
        let roll = noise % FAULT_SCALE;
        let reset = u64::from(self.reset_per_10k);
        let torn = reset + u64::from(self.torn_write_per_10k);
        let stall = torn + u64::from(self.stall_per_10k);
        if roll < reset {
            Fault::Reset
        } else if roll < torn {
            Fault::Torn
        } else if roll < stall {
            Fault::Stall
        } else {
            Fault::None
        }
    }
}

/// One direction of one proxied connection: reads chunks from `from`,
/// injures them per the fault stream, writes survivors to `to`.
fn pump(
    cfg: ChaosConfig,
    counters: Arc<SharedChaosCounters>,
    conn: u64,
    direction: u64,
    from: TcpStream,
    to: TcpStream,
) {
    let mut from = from;
    let mut to = to;
    let mut chunk_idx = 0u64;
    let mut buf = [0u8; 2048];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        counters.chunks.fetch_add(1, Ordering::SeqCst);
        let fault = cfg.draw(conn, direction, chunk_idx);
        chunk_idx += 1;
        if cfg.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(cfg.delay_ms));
        }
        match fault {
            Fault::Reset => {
                counters.resets.fetch_add(1, Ordering::SeqCst);
                break;
            }
            Fault::Torn => {
                // Forward a strict prefix, then die: the receiver holds
                // a partial line it must never mistake for a whole one.
                counters.torn_writes.fetch_add(1, Ordering::SeqCst);
                let half = (n / 2).max(1).min(n.saturating_sub(1));
                if half > 0 {
                    let _ = to.write_all(&buf[..half]);
                    let _ = to.flush();
                }
                break;
            }
            Fault::Stall => {
                counters.stalls.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(cfg.stall_ms));
            }
            Fault::None => {}
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
        let _ = to.flush();
    }
    // Sever both sockets so the paired pump thread unblocks too.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// A running chaos proxy; dropping it (or calling [`stop`]) shuts the
/// accept loop down. In-flight pump threads die with their sockets.
///
/// [`stop`]: ChaosProxy::stop
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<SharedChaosCounters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to
    /// `upstream` with the given fault profile.
    pub fn start(upstream: SocketAddr, cfg: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(SharedChaosCounters::default());
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept_thread = std::thread::spawn(move || {
            let mut conn_id = 0u64;
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = incoming else { continue };
                let Ok(server) = TcpStream::connect(upstream) else {
                    // Upstream gone: the client sees an immediate close,
                    // which is just another fault it must survive.
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                accept_counters.connections.fetch_add(1, Ordering::SeqCst);
                conn_id += 1;
                let (c2, s2) = match (client.try_clone(), server.try_clone()) {
                    (Ok(c), Ok(s)) => (c, s),
                    _ => continue,
                };
                let (cf, ct) = (cfg, Arc::clone(&accept_counters));
                let id = conn_id;
                std::thread::spawn(move || pump(cf, ct, id, 0, client, server));
                let (cf, ct) = (cfg, Arc::clone(&accept_counters));
                std::thread::spawn(move || pump(cf, ct, id, 1, s2, c2));
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the activity counters.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            connections: self.counters.connections.load(Ordering::SeqCst),
            chunks: self.counters.chunks.load(Ordering::SeqCst),
            resets: self.counters.resets.load(Ordering::SeqCst),
            torn_writes: self.counters.torn_writes.load(Ordering::SeqCst),
            stalls: self.counters.stalls.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting and joins the accept thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // A self-connect unblocks the blocking accept so the flag is
        // observed; the accepted socket is dropped immediately.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_stream_is_deterministic_and_seed_sensitive() {
        let cfg = ChaosConfig::stormy(7);
        let a: Vec<u64> = (0..64)
            .map(|i| match cfg.draw(1, 0, i) {
                Fault::None => 0,
                Fault::Reset => 1,
                Fault::Torn => 2,
                Fault::Stall => 3,
            })
            .collect();
        let b: Vec<u64> = (0..64)
            .map(|i| match cfg.draw(1, 0, i) {
                Fault::None => 0,
                Fault::Reset => 1,
                Fault::Torn => 2,
                Fault::Stall => 3,
            })
            .collect();
        assert_eq!(a, b, "same seed replays the same carnage");
        assert!(a.iter().any(|&f| f != 0), "stormy profile injects faults");
        let other = ChaosConfig::stormy(8);
        let c: Vec<u64> = (0..64)
            .map(|i| match other.draw(1, 0, i) {
                Fault::None => 0,
                Fault::Reset => 1,
                Fault::Torn => 2,
                Fault::Stall => 3,
            })
            .collect();
        assert_ne!(a, c, "different seeds draw different faults");
    }

    #[test]
    fn benign_proxy_forwards_bytes_faithfully() {
        // Echo upstream: one accept, read a line, write it back.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().expect("accept");
            let mut buf = [0u8; 256];
            let n = conn.read(&mut buf).expect("read");
            conn.write_all(&buf[..n]).expect("write");
        });
        let mut proxy =
            ChaosProxy::start(upstream_addr, ChaosConfig::benign(1)).expect("start proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client.write_all(b"hello through the storm\n").expect("send");
        let mut reply = [0u8; 256];
        let n = client.read(&mut reply).expect("reply");
        assert_eq!(&reply[..n], b"hello through the storm\n");
        echo.join().expect("echo thread");
        proxy.stop();
        let counters = proxy.counters();
        assert_eq!(counters.connections, 1);
        assert!(counters.chunks >= 2, "one chunk each direction");
        assert_eq!(counters.resets + counters.torn_writes, 0);
    }
}
