//! The paper's 15 evaluated workloads.
//!
//! Table 2 of the paper characterizes each workload on real Skylake
//! hardware (translation overhead and cycles-per-L2-TLB-miss, native and
//! virtualized, plus the fraction of accesses backed by 2 MB pages under
//! THP). Those numbers are embedded verbatim here ([`Table2`]) because the
//! paper's own methodology uses them as the measured baseline that its
//! additive performance model (Eqs. 2–5) starts from.
//!
//! Since the original PIN traces cannot be redistributed, each workload
//! also carries a calibrated [`WorkloadSpec`] whose locality model and
//! footprint reproduce the *page-level* behaviour that drives every result
//! in the evaluation: L2 TLB miss pressure, page-walk locality, large-page
//! mix, and spatial adjacency (which the POM-TLB turns into DRAM row-buffer
//! hits).
//!
//! Footprints are scaled the same way the paper scaled its structures
//! ("16 MB ... is a scaled down version of die-stacked DRAM capacity to be
//! a representative fraction of our workloads' working set", §4.6): each
//! SPECrate workload's per-copy footprint is chosen so the 8-copy aggregate
//! sits inside — but stresses — the 16 MB POM-TLB's one-million-entry
//! reach, preserving the paper's regime where the POM-TLB captures
//! essentially the whole working set while the SRAM TLBs cannot.
//!
//! # Examples
//!
//! ```
//! use pomtlb_workloads::{all, by_name};
//!
//! assert_eq!(all().len(), 15);
//! let gups = by_name("gups").unwrap();
//! assert!(gups.table2.overhead_virtual_pct > 17.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consolidation;

use pomtlb_trace::{LocalityModel, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// % of native execution time spent in translation after L2 TLB misses.
    pub overhead_native_pct: f64,
    /// % of virtualized execution time spent in translation.
    pub overhead_virtual_pct: f64,
    /// Average translation cycles per L2 TLB miss, native.
    pub cycles_per_miss_native: f64,
    /// Average translation cycles per L2 TLB miss, virtualized.
    pub cycles_per_miss_virtual: f64,
    /// % of accesses to 2 MB-backed memory under THP.
    pub frac_large_pages_pct: f64,
}

impl Table2 {
    /// The virtualized-to-native translation-cost ratio Figure 3 plots.
    pub fn virt_native_ratio(&self) -> f64 {
        self.cycles_per_miss_virtual / self.cycles_per_miss_native
    }

    /// L2 TLB misses per kilo-instruction implied by the overhead and
    /// per-miss cost at the given baseline CPI (virtualized).
    ///
    /// `overhead = MPKI/1000 × P_avg / CPI`, solved for MPKI.
    pub fn implied_mpki_virtual(&self, cpi: f64) -> f64 {
        (self.overhead_virtual_pct / 100.0) * cpi * 1000.0 / self.cycles_per_miss_virtual
    }

    /// Same, for native execution.
    pub fn implied_mpki_native(&self, cpi: f64) -> f64 {
        (self.overhead_native_pct / 100.0) * cpi * 1000.0 / self.cycles_per_miss_native
    }
}

/// A paper workload: name, measured Table 2 characteristics, and the
/// calibrated synthetic generator standing in for its PIN trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperWorkload {
    /// Workload name as the paper spells it.
    pub name: &'static str,
    /// Which suite it comes from (for reports).
    pub suite: Suite,
    /// Measured Skylake characteristics (Table 2).
    pub table2: Table2,
    /// The synthetic trace generator spec.
    pub spec: WorkloadSpec,
}

/// Benchmark suite provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2006 (run in SPECrate-style multi-copy mode).
    SpecCpu,
    /// PARSEC (8 threads).
    Parsec,
    /// Graph / big-data workloads (graph500, pagerank, connected
    /// components, GUPS).
    Graph,
}

impl Suite {
    /// Whether all simulated cores share one address space. SPEC CPU runs
    /// as independent copies (§3.1: "we ensure that they do not share the
    /// physical memory space"); PARSEC and the graph workloads run as 8
    /// threads of one process.
    pub fn shares_memory(self) -> bool {
        !matches!(self, Suite::SpecCpu)
    }
}

macro_rules! workload {
    (
        $name:literal, $suite:expr,
        t2: [$on:expr, $ov:expr, $cn:expr, $cv:expr, $fl:expr],
        footprint: $fp:expr, rpki: $rpki:expr, writes: $wf:expr, burst: $burst:expr,
        locality: $loc:expr
    ) => {
        PaperWorkload {
            name: $name,
            suite: $suite,
            table2: Table2 {
                overhead_native_pct: $on,
                overhead_virtual_pct: $ov,
                cycles_per_miss_native: $cn,
                cycles_per_miss_virtual: $cv,
                frac_large_pages_pct: $fl,
            },
            spec: WorkloadSpec::builder($name)
                .footprint_bytes($fp)
                .large_page_frac($fl / 100.0)
                .refs_per_kilo_instr($rpki)
                .write_frac($wf)
                .same_page_burst($burst)
                .locality($loc)
                .build(),
        }
    };
}

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// All 15 workloads, in the paper's (alphabetical) figure order.
pub fn all() -> Vec<PaperWorkload> {
    vec![
        // SPEC: pointer-heavy path-finding over a large grid; big hot set
        // with a long tail — high TLB pressure (13.9 % native overhead).
        workload!("astar", Suite::SpecCpu,
            t2: [13.89, 16.08, 98.0, 114.0, 41.7],
            footprint: 192 * MB, rpki: 350.0, writes: 0.25, burst: 0.45,
            locality: LocalityModel::Mixed(vec![
                (0.55, LocalityModel::TlbConflictSet { pages: 28, stride_pages: 128 }),
                (0.75, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 30_000 }),
                (0.12, LocalityModel::PointerChase { hot_frac: 0.05, hot_prob: 0.55 }),
            ])),
        // SPEC: block-structured stencil; streaming with several operand
        // arrays, almost no large pages (0.8 %).
        workload!("bwaves", Suite::SpecCpu,
            t2: [0.73, 7.70, 128.0, 151.0, 0.8],
            footprint: 128 * MB, rpki: 300.0, writes: 0.35, burst: 0.70,
            locality: LocalityModel::Mixed(vec![
                (0.2, LocalityModel::TlbConflictSet { pages: 20, stride_pages: 128 }),
                (0.35, LocalityModel::Streaming { streams: 6 }),
                (0.4, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 20_000 }),
            ])),
        // PARSEC: simulated annealing over a netlist; scattered small
        // reads with a warm core.
        workload!("canneal", Suite::Parsec,
            t2: [3.19, 6.34, 53.0, 61.0, 16.0],
            footprint: 256 * MB, rpki: 280.0, writes: 0.20, burst: 0.50,
            locality: LocalityModel::Mixed(vec![
                (0.35, LocalityModel::TlbConflictSet { pages: 24, stride_pages: 128 }),
                (0.5, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 15_000 }),
                (0.25, LocalityModel::PointerChase { hot_frac: 0.30, hot_prob: 0.60 }),
            ])),
        // Graph: connected components; the paper's pathological case
        // (1158 cycles/miss virtualized) — power-law vertex access over a
        // very large, essentially unclusterable footprint.
        workload!("ccomponent", Suite::Graph,
            t2: [0.73, 7.40, 44.0, 1158.0, 50.0],
            footprint: 2560 * MB, rpki: 260.0, writes: 0.15, burst: 0.10,
            locality: LocalityModel::Mixed(vec![
                (0.15, LocalityModel::TlbConflictSet { pages: 32, stride_pages: 128 }),
                (0.30, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 25_000 }),
                (0.30, LocalityModel::Zipf { alpha: 0.65 }),
                (0.20, LocalityModel::UniformRandom),
            ])),
        // SPEC: compiler; moderate footprint, bursty IR traversals.
        workload!("gcc", Suite::SpecCpu,
            t2: [0.30, 12.12, 46.0, 88.0, 29.0],
            footprint: 160 * MB, rpki: 240.0, writes: 0.30, burst: 0.40,
            locality: LocalityModel::Mixed(vec![
                (0.45, LocalityModel::TlbConflictSet { pages: 24, stride_pages: 128 }),
                (0.6, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 20_000 }),
                (0.2, LocalityModel::Zipf { alpha: 0.9 }),
            ])),
        // SPEC: finite-difference time domain; large grids swept with
        // several field arrays, mostly 2 MB pages.
        workload!("GemsFDTD", Suite::SpecCpu,
            t2: [10.58, 16.01, 129.0, 133.0, 71.0],
            footprint: 384 * MB, rpki: 330.0, writes: 0.35, burst: 0.55,
            locality: LocalityModel::Mixed(vec![
                (0.5, LocalityModel::TlbConflictSet { pages: 28, stride_pages: 128 }),
                (0.6, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 40_000 }),
                (0.2, LocalityModel::Streaming { streams: 6 }),
            ])),
        // Graph: BFS on a synthetic power-law graph.
        workload!("graph500", Suite::Graph,
            t2: [1.03, 7.66, 79.0, 80.0, 7.0],
            footprint: GB, rpki: 270.0, writes: 0.20, burst: 0.25,
            locality: LocalityModel::Mixed(vec![
                (0.22, LocalityModel::TlbConflictSet { pages: 24, stride_pages: 128 }),
                (0.45, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 25_000 }),
                (0.30, LocalityModel::Zipf { alpha: 0.9 }),
            ])),
        // Graph/HPC: random updates across the whole table — the paper's
        // low-locality stress case (only 2.59 % large pages).
        workload!("gups", Suite::Graph,
            t2: [12.20, 17.20, 43.0, 70.0, 2.59],
            footprint: 1280 * MB, rpki: 380.0, writes: 0.50, burst: 0.05,
            locality: LocalityModel::UniformRandom),
        // SPEC: lattice Boltzmann; two big arrays streamed, mostly large
        // pages, but costly virtualized walks (290 cycles/miss).
        workload!("lbm", Suite::SpecCpu,
            t2: [0.05, 12.02, 110.0, 290.0, 57.4],
            footprint: 256 * MB, rpki: 320.0, writes: 0.45, burst: 0.65,
            locality: LocalityModel::Mixed(vec![
                (0.3, LocalityModel::TlbConflictSet { pages: 20, stride_pages: 128 }),
                (0.3, LocalityModel::Streaming { streams: 4 }),
                (0.5, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 30_000 }),
            ])),
        // SPEC: quantum simulation; a single large vector swept.
        workload!("libquantum", Suite::SpecCpu,
            t2: [0.02, 7.37, 70.0, 75.0, 32.9],
            footprint: 192 * MB, rpki: 290.0, writes: 0.30, burst: 0.75,
            locality: LocalityModel::Mixed(vec![
                (0.25, LocalityModel::TlbConflictSet { pages: 20, stride_pages: 128 }),
                (0.35, LocalityModel::Streaming { streams: 2 }),
                (0.45, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 25_000 }),
            ])),
        // SPEC: sparse network simplex; the classic pointer-chasing TLB
        // killer (19 % virtualized overhead).
        workload!("mcf", Suite::SpecCpu,
            t2: [10.32, 19.01, 66.0, 169.0, 60.7],
            footprint: 320 * MB, rpki: 360.0, writes: 0.25, burst: 0.30,
            locality: LocalityModel::Mixed(vec![
                (0.55, LocalityModel::TlbConflictSet { pages: 32, stride_pages: 128 }),
                (0.65, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 35_000 }),
                (0.10, LocalityModel::PointerChase { hot_frac: 0.02, hot_prob: 0.8 }),
                (0.06, LocalityModel::UniformRandom),
            ])),
        // Graph: pagerank; power-law vertex popularity over a large graph.
        workload!("pagerank", Suite::Graph,
            t2: [4.07, 6.96, 51.0, 61.0, 60.0],
            footprint: 2 * GB, rpki: 300.0, writes: 0.30, burst: 0.35,
            locality: LocalityModel::Mixed(vec![
                (0.22, LocalityModel::TlbConflictSet { pages: 24, stride_pages: 128 }),
                (0.5, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 30_000 }),
                (0.30, LocalityModel::Zipf { alpha: 0.85 }),
            ])),
        // SPEC: LP solver; matrix sweeps plus irregular pivots.
        workload!("soplex", Suite::SpecCpu,
            t2: [4.16, 17.07, 144.0, 145.0, 12.3],
            footprint: 144 * MB, rpki: 310.0, writes: 0.30, burst: 0.40,
            locality: LocalityModel::Mixed(vec![
                (0.5, LocalityModel::TlbConflictSet { pages: 28, stride_pages: 128 }),
                (0.65, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 30_000 }),
                (0.18, LocalityModel::Streaming { streams: 4 }),
            ])),
        // PARSEC: streaming k-median clustering; the paper's low-headroom
        // case (2.11 % overhead) with very high spatial locality.
        workload!("streamcluster", Suite::Parsec,
            t2: [0.07, 2.11, 74.0, 76.0, 87.2],
            footprint: 256 * MB, rpki: 250.0, writes: 0.15, burst: 0.80,
            locality: LocalityModel::Mixed(vec![
                (0.18, LocalityModel::TlbConflictSet { pages: 16, stride_pages: 128 }),
                (0.35, LocalityModel::Streaming { streams: 2 }),
                (0.5, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 20_000 }),
            ])),
        // SPEC: CFD on a structured mesh; mostly large pages.
        workload!("zeusmp", Suite::SpecCpu,
            t2: [0.01, 10.22, 136.0, 137.0, 72.1],
            footprint: 448 * MB, rpki: 310.0, writes: 0.35, burst: 0.60,
            locality: LocalityModel::Mixed(vec![
                (0.35, LocalityModel::TlbConflictSet { pages: 24, stride_pages: 128 }),
                (0.6, LocalityModel::WorkingSetWindow { window_pages: 1792, dwell: 30_000 }),
                (0.25, LocalityModel::Streaming { streams: 8 }),
            ])),
    ]
}

/// Looks a workload up by its paper name (case-sensitive, e.g.
/// `"GemsFDTD"`).
pub fn by_name(name: &str) -> Option<PaperWorkload> {
    all().into_iter().find(|w| w.name == name)
}

/// The names in figure order, for report headers.
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(|w| w.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_workloads() {
        assert_eq!(all().len(), 15);
    }

    #[test]
    fn names_unique_and_sorted_like_figures() {
        let names = names();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert_eq!(names[0], "astar");
        assert_eq!(*names.last().unwrap(), "zeusmp");
    }

    #[test]
    fn all_specs_validate() {
        for w in all() {
            assert!(w.spec.validate().is_ok(), "{} spec invalid", w.name);
        }
    }

    #[test]
    fn table2_values_match_paper_spot_checks() {
        let ccomp = by_name("ccomponent").unwrap();
        assert_eq!(ccomp.table2.cycles_per_miss_virtual, 1158.0);
        let mcf = by_name("mcf").unwrap();
        assert_eq!(mcf.table2.overhead_virtual_pct, 19.01);
        assert_eq!(mcf.table2.frac_large_pages_pct, 60.7);
        let sc = by_name("streamcluster").unwrap();
        assert_eq!(sc.table2.overhead_virtual_pct, 2.11);
        let gups = by_name("gups").unwrap();
        assert_eq!(gups.table2.cycles_per_miss_native, 43.0);
    }

    #[test]
    fn figure3_ratios_match_paper_callouts() {
        // The paper calls out gups 1.5x, ccomponent 26x, gcc 1.9x, lbm 2.5x
        // and mcf 2.5x.
        let ratio = |n: &str| by_name(n).unwrap().table2.virt_native_ratio();
        assert!((ratio("gups") - 1.63).abs() < 0.15);
        assert!((ratio("ccomponent") - 26.3).abs() < 0.5);
        assert!((ratio("gcc") - 1.9).abs() < 0.1);
        assert!((ratio("lbm") - 2.6).abs() < 0.15);
        assert!((ratio("mcf") - 2.56).abs() < 0.1);
    }

    #[test]
    fn large_page_fraction_matches_table() {
        for w in all() {
            assert!(
                (w.spec.large_page_frac - w.table2.frac_large_pages_pct / 100.0).abs() < 1e-9,
                "{} large-page mismatch",
                w.name
            );
        }
    }

    #[test]
    fn virtual_overhead_exceeds_native() {
        for w in all() {
            assert!(
                w.table2.overhead_virtual_pct >= w.table2.overhead_native_pct,
                "{}",
                w.name
            );
            assert!(w.table2.cycles_per_miss_virtual >= w.table2.cycles_per_miss_native);
        }
    }

    #[test]
    fn implied_mpki_is_plausible() {
        // gups is the most TLB-intensive workload; streamcluster the least.
        let gups = by_name("gups").unwrap().table2.implied_mpki_virtual(1.0);
        let sc = by_name("streamcluster").unwrap().table2.implied_mpki_virtual(1.0);
        assert!(gups > 2.0, "gups MPKI {gups}");
        assert!(sc < 0.5, "streamcluster MPKI {sc}");
        for w in all() {
            let mpki = w.table2.implied_mpki_virtual(1.0);
            assert!(mpki > 0.0 && mpki < 10.0, "{} implausible MPKI {mpki}", w.name);
        }
    }

    #[test]
    fn by_name_misses_cleanly() {
        assert!(by_name("nonesuch").is_none());
        assert!(by_name("gemsfdtd").is_none(), "names are case-sensitive");
        assert!(by_name("GemsFDTD").is_some());
    }

    #[test]
    fn sharing_follows_suite() {
        assert!(!Suite::SpecCpu.shares_memory());
        assert!(Suite::Parsec.shares_memory());
        assert!(Suite::Graph.shares_memory());
    }

    #[test]
    fn suites_cover_all_three() {
        let w = all();
        assert!(w.iter().any(|x| x.suite == Suite::SpecCpu));
        assert!(w.iter().any(|x| x.suite == Suite::Parsec));
        assert!(w.iter().any(|x| x.suite == Suite::Graph));
    }

    #[test]
    fn serde_round_trip() {
        let w = by_name("mcf").unwrap();
        let json = serde_json::to_string(&w.table2).unwrap();
        let back: Table2 = serde_json::from_str(&json).unwrap();
        assert_eq!(w.table2, back);
        // The whole workload serializes too (name borrows statically, so
        // deserialize via an owned document only in external tooling).
        assert!(serde_json::to_string(&w).unwrap().contains("mcf"));
    }
}
