//! The consolidation tenant-mix workload: 100..10 000 VMs sharing one
//! host, with Zipf-skewed traffic, per-VM working-set scaling and
//! lifecycle churn.
//!
//! The paper's workloads each model *one* guest's reference behaviour;
//! consolidation sweeps instead stress Eq. (1)'s VM_ID spreading and the
//! shootdown machinery under a realistic multi-tenant population. This
//! module is the single source of truth for that scenario's spec — the
//! CLI's `consolidation-sweep`, the serve daemon's `consolidation`
//! request kind and the perf tracker all build their jobs here, so a
//! memoized sweep report answers an identical CLI run byte for byte.

use pomtlb_trace::{LocalityModel, TenantMix, WorkloadSpec};

/// Default tenant count when a request leaves it unset (zero).
pub const DEFAULT_VMS: u32 = 1_000;
/// Default `DestroyVm` teardowns per 10 000 references (per core).
pub const DEFAULT_CHURN_DESTROYS: f64 = 0.5;
/// Default fork storms per 10 000 references (per core).
pub const DEFAULT_CHURN_FORKS: f64 = 1.0;
/// COW pages each fork storm remaps.
pub const FORK_PAGES: u32 = 8;
/// Zipf exponent of the tenant traffic distribution (datacenter tenant
/// popularity is heavy-tailed but not scale-free; 0.9 keeps a long
/// measurable tail at 10k VMs).
pub const TRAFFIC_SKEW: f64 = 0.9;
/// Working-set decay exponent: tenant `v` keeps `(v+1)^-0.5` of the
/// region as resident working set, so cold tenants are small but never
/// empty.
pub const WS_DECAY: f64 = 0.5;

/// Resolves request-level consolidation knobs, where **zero means
/// default** — the same convention serve requests use everywhere else —
/// and out-of-domain values are *errors*, never silent clamps.
///
/// Returns `(vms, destroys_per_10k, fork_storms_per_10k)`.
pub fn resolve_mix(vms: u32, destroys: f64, forks: f64) -> Result<(u32, f64, f64), String> {
    let vms = if vms == 0 { DEFAULT_VMS } else { vms };
    if vms > 65_536 {
        return Err(format!("tenant count {vms} exceeds the 65536 VM_ID space"));
    }
    let destroys = if destroys == 0.0 { DEFAULT_CHURN_DESTROYS } else { destroys };
    let forks = if forks == 0.0 { DEFAULT_CHURN_FORKS } else { forks };
    for (name, rate) in [("churn-destroys", destroys), ("churn-forks", forks)] {
        if !rate.is_finite() || rate < 0.0 {
            return Err(format!("{name} must be a finite non-negative rate, got {rate}"));
        }
        if rate > 10_000.0 {
            return Err(format!("{name} {rate} exceeds 10000 events per 10k references"));
        }
    }
    Ok((vms, destroys, forks))
}

/// The consolidation workload spec for a resolved tenant population.
///
/// One shared 64 MB host footprint (all cores in one guest-physical
/// space, shared-memory style) folded per tenant by working-set decay;
/// Zipf page locality within each tenant's slice; the base OS-event
/// rates zeroed so every observed remap is fork-storm COW traffic and
/// every teardown is tenant churn — the report's churn counters then
/// measure exactly what the mix injected.
///
/// Pass `churn = None` for a churn-free population (the `--no-churn`
/// control arm).
pub fn consolidation_spec(vms: u32, churn: Option<(f64, f64)>) -> WorkloadSpec {
    let (destroys, forks) = churn.unwrap_or((0.0, 0.0));
    WorkloadSpec::builder(format!("consolidation-{vms}vm"))
        .footprint_bytes(64 << 20)
        .large_page_frac(0.3)
        .same_page_burst(0.3)
        .locality(LocalityModel::Zipf { alpha: 1.05 })
        .tenancy(TenantMix {
            vms,
            skew: TRAFFIC_SKEW,
            ws_decay: WS_DECAY,
            churn_destroys_per_10k: destroys,
            fork_storms_per_10k: forks,
            fork_pages: FORK_PAGES,
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_defaults() {
        let (vms, d, f) = resolve_mix(0, 0.0, 0.0).unwrap();
        assert_eq!(vms, DEFAULT_VMS);
        assert_eq!(d, DEFAULT_CHURN_DESTROYS);
        assert_eq!(f, DEFAULT_CHURN_FORKS);
    }

    #[test]
    fn explicit_values_pass_through() {
        let (vms, d, f) = resolve_mix(10_000, 2.5, 0.25).unwrap();
        assert_eq!((vms, d, f), (10_000, 2.5, 0.25));
    }

    #[test]
    fn bad_values_error_instead_of_clamping() {
        assert!(resolve_mix(70_000, 0.0, 0.0).is_err(), "over the VM_ID space");
        assert!(resolve_mix(100, -1.0, 0.0).is_err(), "negative rate");
        assert!(resolve_mix(100, f64::NAN, 0.0).is_err(), "NaN rate");
        assert!(resolve_mix(100, 0.0, 20_000.0).is_err(), "absurd rate");
    }

    #[test]
    fn spec_validates_at_every_ladder_rung() {
        for vms in [100, 1_000, 10_000] {
            let spec = consolidation_spec(vms, Some((0.5, 1.0)));
            assert_eq!(spec.tenancy.vms, vms);
            assert!(spec.tenancy.has_churn());
            assert_eq!(spec.os_events.total(), 0.0, "base OS events stay off");
            let quiet = consolidation_spec(vms, None);
            assert!(!quiet.tenancy.has_churn());
        }
    }
}
