//! The hardware page walker: 1-D native walks and 2-D nested walks with
//! paging-structure caches and PTE caching in the data caches.
//!
//! This is the machinery the POM-TLB exists to avoid. Its cost structure is
//! exactly the paper's Figure 1/§1 story:
//!
//! * native: up to 4 sequential PTE reads;
//! * virtualized: for each guest level, the guest PTE's *guest-physical*
//!   address must itself be translated by a nested host walk (up to 4
//!   reads) before the guest PTE (1 read) can be fetched, and the final
//!   guest-physical data address needs one more host walk — up to 24 reads;
//! * the PSCs ([`crate::Psc`]) skip upper levels on both dimensions, and
//!   every PTE read probes the L2/L3 data caches before going to DRAM, so
//!   the *average* walk is far cheaper than the worst case — but, as the
//!   paper measures, still tens to hundreds of cycles per L2 TLB miss.

use pomtlb_cache::Hierarchy;
use pomtlb_dram::Channel;
use pomtlb_types::{AddressSpace, CoreId, Cycles, Gpa, Gva, Hpa, PageSize};
use serde::{Deserialize, Serialize};

use crate::page_table::{VirtTables, WalkMode, WalkPath};
use crate::psc::{Psc, PscConfig, PscLevel};

/// The result of one completed page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Host-physical base of the translated page.
    pub page_base: Hpa,
    /// The mapping's page size.
    pub size: PageSize,
    /// Total walk latency in CPU cycles (PSC lookups + cache probes + DRAM).
    pub latency: Cycles,
    /// Memory references actually performed (0..=24).
    pub mem_refs: u32,
    /// PSC hits across both dimensions during this walk.
    pub psc_hits: u32,
}

/// Accumulated walker statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkerStats {
    /// Completed walks.
    pub walks: u64,
    /// PTE memory references issued.
    pub mem_refs: u64,
    /// PTE references satisfied by the L2/L3 data caches.
    pub pte_cache_hits: u64,
    /// PTE references that went to DRAM.
    pub pte_dram_refs: u64,
    /// PSC hits (both dimensions).
    pub psc_hits: u64,
    /// PSC lookups that missed every level.
    pub psc_misses: u64,
    /// Sum of walk latencies.
    pub total_latency: Cycles,
}

impl WalkerStats {
    /// Mean walk latency in cycles; zero if no walks happened.
    pub fn mean_latency(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.total_latency.as_f64() / self.walks as f64
        }
    }

    /// Mean memory references per walk.
    pub fn mean_refs(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.mem_refs as f64 / self.walks as f64
        }
    }
}

/// The per-core hardware page walker.
///
/// Holds two paging-structure-cache dimensions: one keyed by guest-virtual
/// prefixes (caching host-physical pointers to guest table nodes) and one
/// keyed by guest-physical prefixes (the EPT dimension). In native mode only
/// the host dimension is used.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NestedWalker {
    guest_psc: Psc,
    host_psc: Psc,
    stats: WalkerStats,
}

struct WalkCharge {
    latency: Cycles,
    mem_refs: u32,
    psc_hits: u32,
}

impl NestedWalker {
    /// Creates a walker with the given PSC geometry for both dimensions.
    pub fn new(psc_config: PscConfig) -> NestedWalker {
        NestedWalker {
            guest_psc: Psc::new(psc_config),
            host_psc: Psc::new(psc_config),
            stats: WalkerStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WalkerStats {
        &self.stats
    }

    /// Resets statistics (post-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = WalkerStats::default();
    }

    /// Flushes both PSC dimensions for an address space (context switch /
    /// shootdown).
    pub fn flush_space(&mut self, space: AddressSpace) {
        self.guest_psc.flush_space(space);
        self.host_psc.flush_space(space);
    }

    /// Flushes both PSC dimensions for every space of a VM (VM teardown).
    pub fn flush_vm(&mut self, vm: pomtlb_types::VmId) {
        self.guest_psc.flush_vm(vm);
        self.host_psc.flush_vm(vm);
    }

    /// Walks `gva` through `tables`, charging cache and DRAM time starting
    /// at `now`. Returns `None` if the address is unmapped.
    #[allow(clippy::too_many_arguments)]
    pub fn walk(
        &mut self,
        core: CoreId,
        space: AddressSpace,
        gva: Gva,
        tables: &VirtTables,
        hier: &mut Hierarchy,
        dram: &mut Channel,
        now: Cycles,
    ) -> Option<WalkOutcome> {
        let mut charge = WalkCharge { latency: Cycles::ZERO, mem_refs: 0, psc_hits: 0 };
        let (page_base, size) = match tables.mode() {
            WalkMode::Native => {
                let path = tables.host_walk(Gpa::new(gva.raw()))?;
                let size = path.size;
                let translated = self.walk_one_dimension(
                    core, space, gva.raw(), &path, Dimension::Host, tables, hier, dram, now,
                    &mut charge,
                )?;
                // `walk_one_dimension` returns base + offset; report the
                // page base (the offset would otherwise be double-counted
                // by callers that re-add it).
                (Hpa::new(translated - (translated & (size.bytes() - 1))), size)
            }
            WalkMode::Virtualized => {
                let guest_path = tables.guest_walk(gva)?;
                let size = guest_path.size;
                let n = guest_path.pte_addrs.len();
                let deepest = if n == 4 { PscLevel::Pde } else { PscLevel::Pdp };
                let psc_hit = self.guest_psc.lookup_deepest(space, gva.raw(), deepest);
                charge.latency += self.guest_psc.config().latency;
                match psc_hit {
                    Some(_) => {
                        charge.psc_hits += 1;
                        self.stats.psc_hits += 1;
                    }
                    None => self.stats.psc_misses += 1,
                }
                let start = psc_hit.map(|(l, _)| l.levels_skipped()).unwrap_or(0).min(n - 1);

                for i in start..n {
                    let pte_gpa = guest_path.pte_addrs[i];
                    // Find the host-physical location of the guest PTE.
                    let pte_hpa = match psc_hit {
                        Some((_, node_hpa)) if i == start => {
                            // PSC cached the node's host pointer: same
                            // in-node offset, no nested walk.
                            node_hpa + (pte_gpa - guest_path.node_addrs[i])
                        }
                        _ => {
                            let path = tables.host_walk(Gpa::new(pte_gpa))?;
                            self.walk_one_dimension(
                                core, space, pte_gpa, &path, Dimension::Host, tables, hier,
                                dram, now, &mut charge,
                            )?
                        }
                    };
                    // Read the guest PTE itself.
                    self.mem_ref(core, Hpa::new(pte_hpa), hier, dram, now, &mut charge);
                    // Cache the pointer to the next guest node (host-physical).
                    if i + 1 < n {
                        let next_node_hpa = tables
                            .host_translate(Gpa::new(guest_path.node_addrs[i + 1]))
                            .expect("guest nodes are host-backed");
                        self.guest_psc.insert(space, gva.raw(), level_of(i), next_node_hpa.raw());
                    }
                }

                // Final host walk of the data page's guest-physical address.
                let final_gpa = guest_path.target_base + gva.page_offset(size);
                let path = tables.host_walk(Gpa::new(final_gpa))?;
                let final_hpa = self.walk_one_dimension(
                    core, space, final_gpa, &path, Dimension::Host, tables, hier, dram, now,
                    &mut charge,
                )?;
                (Hpa::new(final_hpa - (final_hpa & (size.bytes() - 1))), size)
            }
        };
        self.stats.walks += 1;
        self.stats.mem_refs += charge.mem_refs as u64;
        self.stats.total_latency += charge.latency;
        Some(WalkOutcome {
            page_base,
            size,
            latency: charge.latency,
            mem_refs: charge.mem_refs,
            psc_hits: charge.psc_hits,
        })
    }

    /// Walks one dimension's radix path, consulting that dimension's PSC,
    /// reading the non-skipped PTEs and installing PSC entries. Returns the
    /// fully translated address (base + offset).
    #[allow(clippy::too_many_arguments)]
    fn walk_one_dimension(
        &mut self,
        core: CoreId,
        space: AddressSpace,
        addr: u64,
        path: &WalkPath,
        dim: Dimension,
        _tables: &VirtTables,
        hier: &mut Hierarchy,
        dram: &mut Channel,
        now: Cycles,
        charge: &mut WalkCharge,
    ) -> Option<u64> {
        let n = path.pte_addrs.len();
        let deepest = if n == 4 { PscLevel::Pde } else { PscLevel::Pdp };
        let psc = match dim {
            Dimension::Host => &mut self.host_psc,
        };
        let hit = psc.lookup_deepest(space, addr, deepest);
        charge.latency += psc.config().latency;
        match hit {
            Some(_) => {
                charge.psc_hits += 1;
                self.stats.psc_hits += 1;
            }
            None => self.stats.psc_misses += 1,
        }
        let start = hit.map(|(l, _)| l.levels_skipped()).unwrap_or(0).min(n - 1);
        for i in start..n {
            self.mem_ref(core, Hpa::new(path.pte_addrs[i]), hier, dram, now, charge);
            if i + 1 < n {
                let psc = match dim {
                    Dimension::Host => &mut self.host_psc,
                };
                psc.insert(space, addr, level_of(i), path.node_addrs[i + 1]);
            }
        }
        Some(path.target_base + (addr & (path.size.bytes() - 1)))
    }

    /// One PTE memory reference: L2→L3 probe, then DRAM on a miss.
    fn mem_ref(
        &mut self,
        core: CoreId,
        hpa: Hpa,
        hier: &mut Hierarchy,
        dram: &mut Channel,
        now: Cycles,
        charge: &mut WalkCharge,
    ) {
        charge.mem_refs += 1;
        let probe = hier.access_page_table(core, hpa);
        charge.latency += probe.latency;
        if probe.hit() {
            self.stats.pte_cache_hits += 1;
        } else {
            let access = dram.access(hpa, now + charge.latency);
            charge.latency += access.latency;
            self.stats.pte_dram_refs += 1;
        }
    }
}

/// Which PSC dimension a 1-D walk charges (the guest dimension is handled
/// inline in `walk`).
#[derive(Clone, Copy)]
enum Dimension {
    Host,
}

/// The PSC level responsible for the transition out of root-first PTE index
/// `i` (reading PTE 0 teaches the PML4 cache, etc.).
fn level_of(i: usize) -> PscLevel {
    match i {
        0 => PscLevel::Pml4,
        1 => PscLevel::Pdp,
        2 => PscLevel::Pde,
        _ => unreachable!("only interior levels install PSC entries"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomtlb_cache::HierarchyConfig;
    use pomtlb_dram::DramTiming;
    use pomtlb_types::{ProcessId, VmId};

    fn setup(mode: WalkMode) -> (VirtTables, Hierarchy, Channel, NestedWalker) {
        (
            VirtTables::new(mode),
            Hierarchy::new(HierarchyConfig::default(), 1),
            Channel::new(DramTiming::ddr4_2133(4.0), 16),
            NestedWalker::new(PscConfig::default()),
        )
    }

    fn space() -> AddressSpace {
        AddressSpace::new(VmId(0), ProcessId(0))
    }

    #[test]
    fn native_cold_walk_touches_four_ptes() {
        let (mut t, mut h, mut d, mut w) = setup(WalkMode::Native);
        let gva = Gva::new(0x1000_0000_0000);
        let hpa = t.ensure_mapped(gva, PageSize::Small4K);
        let out = w
            .walk(CoreId(0), space(), gva, &t, &mut h, &mut d, Cycles::ZERO)
            .unwrap();
        assert_eq!(out.mem_refs, 4);
        assert_eq!(out.page_base, hpa);
        assert_eq!(out.size, PageSize::Small4K);
        assert_eq!(out.psc_hits, 0);
        assert!(out.latency.raw() > 200, "4 cold DRAM refs are expensive: {}", out.latency);
    }

    #[test]
    fn virtualized_cold_walk_without_psc_touches_24_ptes() {
        // With the paging-structure caches disabled, the raw Figure 1
        // geometry shows: 4 guest levels x (4 host + 1 guest) + 4 = 24.
        let (mut t, mut h, mut d, _) = setup(WalkMode::Virtualized);
        let mut w = NestedWalker::new(PscConfig::disabled());
        let gva = Gva::new(0x1000_0000_0000);
        let hpa = t.ensure_mapped(gva, PageSize::Small4K);
        let out = w
            .walk(CoreId(0), space(), gva, &t, &mut h, &mut d, Cycles::ZERO)
            .unwrap();
        assert_eq!(out.mem_refs, 24, "Figure 1 geometry");
        assert_eq!(out.page_base, hpa);
    }

    #[test]
    fn psc_warms_within_a_single_cold_walk() {
        // Guest table nodes sit at adjacent guest-physical addresses, so
        // the nested host walks share PDE prefixes: even the very first
        // virtualized walk does fewer than 24 references with PSCs on.
        let (mut t, mut h, mut d, mut w) = setup(WalkMode::Virtualized);
        let gva = Gva::new(0x1000_0000_0000);
        t.ensure_mapped(gva, PageSize::Small4K);
        let out = w
            .walk(CoreId(0), space(), gva, &t, &mut h, &mut d, Cycles::ZERO)
            .unwrap();
        assert!(out.mem_refs < 24, "PSC should trim the cold walk, got {}", out.mem_refs);
        assert!(out.mem_refs >= 9, "still at least one ref per step, got {}", out.mem_refs);
    }

    #[test]
    fn virtualized_2mb_walk_is_shorter() {
        let (mut t, mut h, mut d, mut w) = setup(WalkMode::Virtualized);
        let gva = Gva::new(0x2000_0000_0000);
        t.ensure_mapped(gva, PageSize::Large2M);
        let out = w
            .walk(CoreId(0), space(), gva, &t, &mut h, &mut d, Cycles::ZERO)
            .unwrap();
        // 3 guest levels x (4 host + 1) + final host walk. The guest table
        // nodes are 4KB-mapped in the host (4-level nested walks), while the
        // final data page walk is over a 2MB host mapping (3 refs).
        assert!(out.mem_refs < 24, "2MB walk must be shorter, got {}", out.mem_refs);
        assert_eq!(out.size, PageSize::Large2M);
    }

    #[test]
    fn warm_walk_uses_psc_and_caches() {
        let (mut t, mut h, mut d, mut w) = setup(WalkMode::Virtualized);
        let gva = Gva::new(0x1000_0000_0000);
        t.ensure_mapped(gva, PageSize::Small4K);
        let cold = w
            .walk(CoreId(0), space(), gva, &t, &mut h, &mut d, Cycles::ZERO)
            .unwrap();
        let warm = w
            .walk(CoreId(0), space(), gva, &t, &mut h, &mut d, cold.latency)
            .unwrap();
        assert!(warm.mem_refs < cold.mem_refs, "{} !< {}", warm.mem_refs, cold.mem_refs);
        assert!(warm.latency < cold.latency);
        assert!(warm.psc_hits > 0);
    }

    #[test]
    fn neighbour_page_benefits_from_shared_nodes() {
        let (mut t, mut h, mut d, mut w) = setup(WalkMode::Virtualized);
        let a = Gva::new(0x1000_0000_0000);
        let b = Gva::new(0x1000_0000_1000);
        t.ensure_mapped(a, PageSize::Small4K);
        t.ensure_mapped(b, PageSize::Small4K);
        let cold = w.walk(CoreId(0), space(), a, &t, &mut h, &mut d, Cycles::ZERO).unwrap();
        let nearby = w.walk(CoreId(0), space(), b, &t, &mut h, &mut d, cold.latency).unwrap();
        // Same PDE prefix: guest PSC hit leaves 1 guest PTE read plus the
        // final host walk (host PSC helps there too).
        assert!(nearby.mem_refs <= 3, "neighbour walk did {} refs", nearby.mem_refs);
    }

    #[test]
    fn native_walk_cheaper_than_virtualized() {
        let (mut tn, mut hn, mut dn, mut wn) = setup(WalkMode::Native);
        let (mut tv, mut hv, mut dv, mut wv) = setup(WalkMode::Virtualized);
        let gva = Gva::new(0x1000_0000_0000);
        tn.ensure_mapped(gva, PageSize::Small4K);
        tv.ensure_mapped(gva, PageSize::Small4K);
        let native = wn.walk(CoreId(0), space(), gva, &tn, &mut hn, &mut dn, Cycles::ZERO).unwrap();
        let virt = wv.walk(CoreId(0), space(), gva, &tv, &mut hv, &mut dv, Cycles::ZERO).unwrap();
        assert!(virt.latency > native.latency);
        assert!(virt.mem_refs > native.mem_refs);
    }

    #[test]
    fn native_walk_of_unaligned_address_returns_page_base() {
        let (mut t, mut h, mut d, mut w) = setup(WalkMode::Native);
        let base_va = Gva::new(0x2000_0000_0000);
        let hpa = t.ensure_mapped(base_va, PageSize::Large2M);
        let out = w
            .walk(CoreId(0), space(), Gva::new(0x2000_0000_e1c0), &t, &mut h, &mut d, Cycles::ZERO)
            .unwrap();
        assert_eq!(out.page_base, hpa, "offset must not leak into the page base");
        assert_eq!(out.size, PageSize::Large2M);
    }

    #[test]
    fn unmapped_address_returns_none() {
        let (t, mut h, mut d, mut w) = setup(WalkMode::Virtualized);
        assert!(w
            .walk(CoreId(0), space(), Gva::new(0xdead_0000), &t, &mut h, &mut d, Cycles::ZERO)
            .is_none());
    }

    #[test]
    fn stats_accumulate() {
        let (mut t, mut h, mut d, mut w) = setup(WalkMode::Native);
        let gva = Gva::new(0x3000_0000_0000);
        t.ensure_mapped(gva, PageSize::Small4K);
        w.walk(CoreId(0), space(), gva, &t, &mut h, &mut d, Cycles::ZERO);
        w.walk(CoreId(0), space(), gva, &t, &mut h, &mut d, Cycles::new(10_000));
        let s = w.stats();
        assert_eq!(s.walks, 2);
        assert!(s.mem_refs >= 5, "cold 4 + warm >=1");
        assert!(s.mean_latency() > 0.0);
        assert!(s.pte_cache_hits > 0, "warm PTEs come from data caches");
    }

    #[test]
    fn flush_space_forgets_psc() {
        let (mut t, mut h, mut d, mut w) = setup(WalkMode::Native);
        let gva = Gva::new(0x3000_0000_0000);
        t.ensure_mapped(gva, PageSize::Small4K);
        w.walk(CoreId(0), space(), gva, &t, &mut h, &mut d, Cycles::ZERO);
        w.flush_space(space());
        let after = w.walk(CoreId(0), space(), gva, &t, &mut h, &mut d, Cycles::new(10_000)).unwrap();
        assert_eq!(after.psc_hits, 0, "PSC flushed");
        // PTEs still come from the data caches though.
        assert_eq!(after.mem_refs, 4);
    }
}
