//! On-chip MMU configuration (Table 1).

use pomtlb_types::Cycles;
use serde::{Deserialize, Serialize};

/// Geometry of one SRAM TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Ways per set.
    pub ways: u32,
    /// Added latency when a lookup at this level misses and must continue
    /// to the next level (Table 1's "miss penalty").
    pub miss_penalty: Cycles,
}

impl TlbConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, `ways` not
    /// dividing `entries`, or a non-power-of-two set count).
    pub fn new(entries: u32, ways: u32, miss_penalty_cycles: u64) -> TlbConfig {
        let cfg = TlbConfig { entries, ways, miss_penalty: Cycles::new(miss_penalty_cycles) };
        cfg.sets(); // validate eagerly
        cfg
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate.
    pub fn sets(&self) -> u32 {
        assert!(self.entries > 0 && self.ways > 0, "TLB must have entries and ways");
        assert!(
            self.entries.is_multiple_of(self.ways),
            "{} entries not divisible into {}-way sets",
            self.entries,
            self.ways
        );
        let sets = self.entries / self.ways;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        sets
    }
}

/// The per-core MMU front end of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuConfig {
    /// L1 TLB for 4 KB pages: 64 entries, 4-way, 9-cycle miss penalty.
    pub l1_small: TlbConfig,
    /// L1 TLB for 2 MB pages: 32 entries, 4-way, 9-cycle miss penalty.
    pub l1_large: TlbConfig,
    /// Unified L2 TLB: 1536 entries, 12-way, 17-cycle miss penalty.
    pub l2_unified: TlbConfig,
}

impl Default for MmuConfig {
    fn default() -> Self {
        MmuConfig {
            l1_small: TlbConfig::new(64, 4, 9),
            l1_large: TlbConfig::new(32, 4, 9),
            l2_unified: TlbConfig::new(1536, 12, 17),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries() {
        let m = MmuConfig::default();
        assert_eq!(m.l1_small.sets(), 16);
        assert_eq!(m.l1_large.sets(), 8);
        assert_eq!(m.l2_unified.sets(), 128);
        assert_eq!(m.l2_unified.miss_penalty, Cycles::new(17));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible() {
        TlbConfig::new(100, 3, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        TlbConfig::new(96, 8, 1); // 12 sets
    }
}
