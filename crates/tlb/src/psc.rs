//! Intel-style paging-structure caches (Table 1's "PSC" block).
//!
//! A PSC entry short-circuits the upper levels of a radix walk: a hit at
//! level *L* hands the walker the physical address of the next-lower table
//! node directly, skipping the memory references for every level above. In
//! virtualized mode the cached pointer is already host-physical, which also
//! skips the *nested* translations of the skipped guest levels — the big
//! lever behind Skylake's modest average walk costs, and the behaviour the
//! paper's measured baseline includes (§3.2).

use pomtlb_types::{AddressSpace, Cycles};
use serde::{Deserialize, Serialize};

/// Which paging-structure cache a prefix belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PscLevel {
    /// Caches root-entry resolutions: VA[47:39] → L3 node. Skips 1 level.
    Pml4,
    /// Caches VA[47:30] → L2 node. Skips 2 levels.
    Pdp,
    /// Caches VA[47:21] → L1 node. Skips 3 levels.
    Pde,
}

impl PscLevel {
    /// Bit shift that produces this level's tag prefix from an address.
    pub fn prefix_shift(self) -> u32 {
        match self {
            PscLevel::Pml4 => 39,
            PscLevel::Pdp => 30,
            PscLevel::Pde => 21,
        }
    }

    /// How many walk levels a hit at this cache skips (the index of the
    /// first PTE that still must be read, in a root-first walk).
    pub fn levels_skipped(self) -> usize {
        match self {
            PscLevel::Pml4 => 1,
            PscLevel::Pdp => 2,
            PscLevel::Pde => 3,
        }
    }
}

/// Geometry of the three caches (Table 1: PML4 ×2, PDP ×4, PDE ×32, 2
/// cycles each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PscConfig {
    /// PML4-cache entries.
    pub pml4_entries: u32,
    /// PDP-cache entries.
    pub pdp_entries: u32,
    /// PDE-cache entries.
    pub pde_entries: u32,
    /// Lookup latency charged per consulted cache.
    pub latency: Cycles,
}

impl Default for PscConfig {
    fn default() -> Self {
        PscConfig { pml4_entries: 2, pdp_entries: 4, pde_entries: 32, latency: Cycles::new(2) }
    }
}

impl PscConfig {
    /// A configuration with no entries at all: every walk reads its full
    /// path. Used to demonstrate the raw Figure 1 geometry and as an
    /// ablation baseline.
    pub fn disabled() -> PscConfig {
        PscConfig { pml4_entries: 0, pdp_entries: 0, pde_entries: 0, latency: Cycles::ZERO }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PscEntry {
    space: AddressSpace,
    prefix: u64,
    node_addr: u64,
    stamp: u64,
}

/// One dimension's paging-structure caches (fully associative, true LRU).
///
/// The walker keeps two instances: one keyed by guest-virtual prefixes, one
/// keyed by guest-physical prefixes (the host/EPT dimension).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Psc {
    config: PscConfig,
    pml4: Vec<PscEntry>,
    pdp: Vec<PscEntry>,
    pde: Vec<PscEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Psc {
    /// Creates empty caches.
    pub fn new(config: PscConfig) -> Psc {
        Psc { config, pml4: Vec::new(), pdp: Vec::new(), pde: Vec::new(), clock: 0, hits: 0, misses: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &PscConfig {
        &self.config
    }

    fn bank(&mut self, level: PscLevel) -> (&mut Vec<PscEntry>, usize) {
        match level {
            PscLevel::Pml4 => (&mut self.pml4, self.config.pml4_entries as usize),
            PscLevel::Pdp => (&mut self.pdp, self.config.pdp_entries as usize),
            PscLevel::Pde => (&mut self.pde, self.config.pde_entries as usize),
        }
    }

    /// Looks up the deepest hit for `addr`, searching PDE → PDP → PML4
    /// (deepest skips the most levels). Returns the level and the cached
    /// next-node physical address. Counts one hit or one miss.
    pub fn lookup_deepest(
        &mut self,
        space: AddressSpace,
        addr: u64,
        deepest_useful: PscLevel,
    ) -> Option<(PscLevel, u64)> {
        self.clock += 1;
        let clock = self.clock;
        let order: &[PscLevel] = match deepest_useful {
            PscLevel::Pde => &[PscLevel::Pde, PscLevel::Pdp, PscLevel::Pml4],
            PscLevel::Pdp => &[PscLevel::Pdp, PscLevel::Pml4],
            PscLevel::Pml4 => &[PscLevel::Pml4],
        };
        for &level in order {
            let prefix = addr >> level.prefix_shift();
            let (bank, _) = self.bank(level);
            if let Some(e) = bank.iter_mut().find(|e| e.space == space && e.prefix == prefix) {
                e.stamp = clock;
                let node = e.node_addr;
                self.hits += 1;
                return Some((level, node));
            }
        }
        self.misses += 1;
        None
    }

    /// Installs/refreshes an entry mapping `addr`'s prefix at `level` to
    /// the next-lower node's physical address.
    pub fn insert(&mut self, space: AddressSpace, addr: u64, level: PscLevel, node_addr: u64) {
        self.clock += 1;
        let clock = self.clock;
        let prefix = addr >> level.prefix_shift();
        let (bank, cap) = self.bank(level);
        if let Some(e) = bank.iter_mut().find(|e| e.space == space && e.prefix == prefix) {
            e.node_addr = node_addr;
            e.stamp = clock;
            return;
        }
        if bank.len() < cap {
            bank.push(PscEntry { space, prefix, node_addr, stamp: clock });
        } else if let Some(lru) = bank.iter_mut().min_by_key(|e| e.stamp) {
            *lru = PscEntry { space, prefix, node_addr, stamp: clock };
        }
        // A zero-capacity bank (PscConfig::disabled) drops the insert.
    }

    /// Flushes all entries for an address space (CR3 switch / shootdown).
    pub fn flush_space(&mut self, space: AddressSpace) {
        self.pml4.retain(|e| e.space != space);
        self.pdp.retain(|e| e.space != space);
        self.pde.retain(|e| e.space != space);
    }

    /// Flushes all entries belonging to a VM (VM teardown).
    pub fn flush_vm(&mut self, vm: pomtlb_types::VmId) {
        self.pml4.retain(|e| e.space.vm != vm);
        self.pdp.retain(|e| e.space.vm != vm);
        self.pde.retain(|e| e.space.vm != vm);
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomtlb_types::{ProcessId, VmId};

    fn space() -> AddressSpace {
        AddressSpace::new(VmId(0), ProcessId(0))
    }

    #[test]
    fn miss_then_deepest_hit() {
        let mut p = Psc::new(PscConfig::default());
        let addr = 0x1234_5678_9000u64;
        assert!(p.lookup_deepest(space(), addr, PscLevel::Pde).is_none());
        p.insert(space(), addr, PscLevel::Pdp, 0xaa000);
        p.insert(space(), addr, PscLevel::Pde, 0xbb000);
        let (level, node) = p.lookup_deepest(space(), addr, PscLevel::Pde).unwrap();
        assert_eq!(level, PscLevel::Pde);
        assert_eq!(node, 0xbb000);
    }

    #[test]
    fn deepest_useful_caps_search() {
        let mut p = Psc::new(PscConfig::default());
        let addr = 0x1234_5678_9000u64;
        p.insert(space(), addr, PscLevel::Pde, 0xbb000);
        // A 2MB walk never wants the PDE cache.
        assert!(p.lookup_deepest(space(), addr, PscLevel::Pdp).is_none());
        p.insert(space(), addr, PscLevel::Pdp, 0xaa000);
        let (level, _) = p.lookup_deepest(space(), addr, PscLevel::Pdp).unwrap();
        assert_eq!(level, PscLevel::Pdp);
    }

    #[test]
    fn prefix_sharing_within_2mb() {
        let mut p = Psc::new(PscConfig::default());
        p.insert(space(), 0x4000_0000, PscLevel::Pde, 0xcc000);
        // Another address in the same 2 MB region hits the same entry.
        let (_, node) = p
            .lookup_deepest(space(), 0x4000_0000 + 0x1f_f000, PscLevel::Pde)
            .unwrap();
        assert_eq!(node, 0xcc000);
        // An address in the next 2 MB region misses.
        assert!(p.lookup_deepest(space(), 0x4020_0000, PscLevel::Pde).is_none());
    }

    #[test]
    fn capacity_and_lru() {
        let mut p = Psc::new(PscConfig { pml4_entries: 2, ..Default::default() });
        let a = 0x0000_8000_0000_0000u64 >> 9; // distinct 39-bit prefixes
        p.insert(space(), 0 << 39, PscLevel::Pml4, 1);
        p.insert(space(), 1 << 39, PscLevel::Pml4, 2);
        p.lookup_deepest(space(), 0 << 39, PscLevel::Pml4); // refresh entry 0
        p.insert(space(), 2 << 39, PscLevel::Pml4, 3); // evicts prefix 1
        assert!(p.lookup_deepest(space(), 0 << 39, PscLevel::Pml4).is_some());
        assert!(p.lookup_deepest(space(), 1 << 39, PscLevel::Pml4).is_none());
        assert!(p.lookup_deepest(space(), 2 << 39, PscLevel::Pml4).is_some());
        let _ = a;
    }

    #[test]
    fn spaces_are_isolated() {
        let mut p = Psc::new(PscConfig::default());
        let other = AddressSpace::new(VmId(1), ProcessId(0));
        p.insert(space(), 0x1000_0000, PscLevel::Pde, 0xdd000);
        assert!(p.lookup_deepest(other, 0x1000_0000, PscLevel::Pde).is_none());
    }

    #[test]
    fn flush_space_clears_only_that_space() {
        let mut p = Psc::new(PscConfig::default());
        let other = AddressSpace::new(VmId(1), ProcessId(0));
        p.insert(space(), 0x1000_0000, PscLevel::Pde, 1);
        p.insert(other, 0x1000_0000, PscLevel::Pde, 2);
        p.flush_space(space());
        assert!(p.lookup_deepest(space(), 0x1000_0000, PscLevel::Pde).is_none());
        assert!(p.lookup_deepest(other, 0x1000_0000, PscLevel::Pde).is_some());
    }

    #[test]
    fn insert_refreshes_in_place() {
        let mut p = Psc::new(PscConfig::default());
        p.insert(space(), 0x1000_0000, PscLevel::Pde, 1);
        p.insert(space(), 0x1000_0000, PscLevel::Pde, 9);
        let (_, node) = p.lookup_deepest(space(), 0x1000_0000, PscLevel::Pde).unwrap();
        assert_eq!(node, 9);
    }

    #[test]
    fn hit_miss_counters() {
        let mut p = Psc::new(PscConfig::default());
        p.lookup_deepest(space(), 0x1, PscLevel::Pde);
        p.insert(space(), 0x1, PscLevel::Pde, 5);
        p.lookup_deepest(space(), 0x1, PscLevel::Pde);
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn levels_skipped_values() {
        assert_eq!(PscLevel::Pml4.levels_skipped(), 1);
        assert_eq!(PscLevel::Pdp.levels_skipped(), 2);
        assert_eq!(PscLevel::Pde.levels_skipped(), 3);
    }
}
