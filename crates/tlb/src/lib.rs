//! SRAM TLBs, radix page tables, the 2-D nested page walker, page-structure
//! caches, and the SPARC-TSB baseline.
//!
//! This crate is the conventional address-translation machinery the POM-TLB
//! sits on top of (and is compared against):
//!
//! * [`SramTlb`] — a set-associative on-chip TLB; instantiated per Table 1
//!   as per-core L1s (64-entry 4 KB + 32-entry 2 MB, 4-way) and a unified
//!   1536-entry 12-way L2, and reused at larger capacity for the
//!   *Shared_L2* baseline of Bhattacharjee et al.,
//! * [`RadixPageTable`] — a real 4-level x86-style radix table whose nodes
//!   are allocated in simulated physical memory, so every PTE the walker
//!   touches has a realistic physical address that contends in the data
//!   caches,
//! * [`VirtTables`] — the guest (gVA→gPA) + host (gPA→hPA) table pair of a
//!   virtualized system, with the Figure 1 walk geometry: up to 24 memory
//!   references per translation,
//! * [`NestedWalker`] — the hardware page walker with Intel-style
//!   paging-structure caches ([`Psc`], Table 1: PML4 ×2, PDP ×4, PDE ×32 at
//!   2 cycles) and PTE caching in the data caches,
//! * [`Tsb`] — the software-managed Translation Storage Buffer baseline
//!   (§3.3): OS trap per miss, direct-mapped, per-dimension lookups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod page_table;
mod psc;
mod sram_tlb;
mod tsb;
mod walker;

pub use config::{MmuConfig, TlbConfig};
pub use page_table::{
    FrameAlloc, PathLevels, RadixPageTable, TableSnapshot, TablesSnapshot, VirtTables, WalkMode,
    WalkPath, MAX_REGIONS,
};
pub use psc::{Psc, PscConfig, PscLevel};
pub use sram_tlb::{SramTlb, TlbLookup, TlbStats};
pub use tsb::{Tsb, TsbConfig, TsbOutcome};
pub use walker::{NestedWalker, WalkOutcome, WalkerStats};
