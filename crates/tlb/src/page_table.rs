//! Real 4-level radix page tables allocated in simulated physical memory.
//!
//! The paper's Figure 1 walk geometry — up to 24 memory references per
//! virtualized translation — emerges from two actual radix tables here, not
//! from a hard-coded constant:
//!
//! * the **guest** table maps gVA → gPA and its nodes live at guest-physical
//!   addresses, so every guest PTE read needs a nested host walk;
//! * the **host** table maps gPA → hPA (including the guest table's own
//!   node pages, which a hypervisor must back with host memory like any
//!   other guest page).
//!
//! A walk of a 4 KB guest mapping therefore touches
//! `4 guest levels × (4 host PTEs + 1 guest PTE) + 4 host PTEs = 24`
//! distinct physical locations, each with a realistic address that contends
//! in the data caches.

use pomtlb_types::{Gpa, Gva, Hpa, PageSize};
use serde::{Deserialize, Serialize};

/// Whether translation is one-dimensional (bare metal) or two-dimensional
/// (guest under a hypervisor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WalkMode {
    /// Bare-metal: one 4-level table, up to 4 references per walk.
    Native,
    /// Virtualized: nested guest + host tables, up to 24 references.
    Virtualized,
}

/// A bump allocator over a region of (simulated) physical address space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameAlloc {
    next: u64,
    limit: u64,
}

impl FrameAlloc {
    /// Creates an allocator over `[base, base + size)`.
    pub fn new(base: u64, size: u64) -> FrameAlloc {
        FrameAlloc { next: base, limit: base + size }
    }

    /// Allocates `bytes` aligned to `bytes` (page-granular allocations).
    ///
    /// # Panics
    ///
    /// Panics if the region is exhausted — simulated physical memory is
    /// sized generously, so running out indicates a mis-sized experiment.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        debug_assert!(bytes.is_power_of_two());
        let aligned = (self.next + bytes - 1) & !(bytes - 1);
        assert!(
            aligned + bytes <= self.limit,
            "physical region exhausted: need {bytes} at {aligned:#x}, limit {:#x}",
            self.limit
        );
        self.next = aligned + bytes;
        aligned
    }

    /// Bytes handed out so far (for occupancy reports).
    pub fn used(&self) -> u64 {
        self.next
    }
}

/// Up to four physical addresses stored inline — one per radix level,
/// root-first. x86-64 tables are at most four levels deep, so a walk path
/// never heap-allocates (walks are the per-reference hot path; a `Vec`
/// here cost two allocations per walk, ~48 of them per virtualized miss).
///
/// Dereferences to a slice, so indexing, `len()`, iteration and range
/// comparisons all work as they did when this was a `Vec<u64>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathLevels {
    addrs: [u64; 4],
    len: u8,
}

impl PathLevels {
    /// An empty path.
    pub const fn new() -> PathLevels {
        PathLevels { addrs: [0; 4], len: 0 }
    }

    /// Appends a level address.
    ///
    /// # Panics
    ///
    /// Panics past four levels — deeper radix tables are not modeled.
    pub fn push(&mut self, addr: u64) {
        self.addrs[self.len as usize] = addr;
        self.len += 1;
    }

    /// The populated prefix as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.addrs[..self.len as usize]
    }
}

impl std::ops::Deref for PathLevels {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a PathLevels {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The references a walk of one table makes, root-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkPath {
    /// Physical address (in this table's own space) of each PTE read.
    /// Length 4 for a 4 KB leaf, 3 for a 2 MB leaf.
    pub pte_addrs: PathLevels,
    /// Base address of the node containing each PTE (same length).
    pub node_addrs: PathLevels,
    /// Base address the leaf maps to (next address space).
    pub target_base: u64,
    /// The mapping's page size.
    pub size: PageSize,
}

const NODE_BYTES: u64 = 4 << 10;
const PTE_BYTES: u64 = 8;
const IDX_MASK: u64 = 0x1ff;

/// Slot entries per radix node: 512 eight-byte PTEs in a 4 KB node page.
const NODE_SLOTS: usize = 512;

/// Slot-word tag distinguishing leaves from child links. Simulated physical
/// addresses stay far below 2^63, so the top bit is free to carry it.
const LEAF_BIT: u64 = 1 << 63;

/// Shifts of the four x86-64 radix levels, root-first.
const LEVEL_SHIFTS: [u32; 4] = [39, 30, 21, 12];

/// One 4-level x86-style radix page table, stored as a flat node arena.
///
/// Every node — root included — lives in one contiguous slot vector, 512
/// slot words per node; `node_phys[i]` holds the simulated physical address
/// of node `i`. A slot word is one of:
///
/// * `0` — empty;
/// * a **child link**: the child's arena index plus one (the `+1` keeps
///   index 0, the root, distinguishable from "empty"; indices fit in `u32`
///   with room to spare);
/// * a **leaf**: the mapped target base address with [`LEAF_BIT`] set.
///
/// Translations and walks descend by indexed loads only — no hashing.
/// This is the simulator's hottest data structure: `translate_page` runs
/// for every simulated memory reference and a virtualized walk reads up to
/// 24 table locations, each of which used to cost a hash-map probe.
///
/// Node pages are allocated from the table's own [`FrameAlloc`]; the table
/// does not model PTE contents (permissions etc.), only the structure the
/// walker traverses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadixPageTable {
    root: u64,
    /// Slot words of every node, concatenated: node `i` owns
    /// `slots[i * NODE_SLOTS .. (i + 1) * NODE_SLOTS]`.
    slots: Vec<u64>,
    /// Physical address of each arena node; index 0 is the root.
    node_phys: Vec<u64>,
    n_small: u64,
    n_large: u64,
    alloc: FrameAlloc,
    /// Node pages created since the last [`RadixPageTable::take_new_nodes`]
    /// call — the hypervisor layer must back these with host frames.
    new_nodes: Vec<u64>,
}

impl RadixPageTable {
    /// Creates an empty table whose nodes come from `alloc`.
    pub fn new(mut alloc: FrameAlloc) -> RadixPageTable {
        let root = alloc.alloc(NODE_BYTES);
        RadixPageTable {
            root,
            slots: vec![0; NODE_SLOTS],
            node_phys: vec![root],
            n_small: 0,
            n_large: 0,
            alloc,
            new_nodes: vec![root],
        }
    }

    /// Physical address of the root node.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Number of leaf mappings installed.
    pub fn mapping_count(&self) -> u64 {
        self.n_small + self.n_large
    }

    /// Allocates a fresh empty node and returns its arena index.
    fn add_node(&mut self) -> usize {
        let phys = self.alloc.alloc(NODE_BYTES);
        let idx = self.node_phys.len();
        assert!(idx <= u32::MAX as usize, "arena index exceeds u32 child links");
        self.node_phys.push(phys);
        self.slots.resize(self.slots.len() + NODE_SLOTS, 0);
        self.new_nodes.push(phys);
        idx
    }

    /// Installs a mapping `va → target_base` of `size`, creating interior
    /// nodes on demand. Re-mapping an existing page updates it in place.
    ///
    /// # Panics
    ///
    /// Panics on 1 GB pages (unused by the paper's workloads), if `va` or
    /// `target_base` are not size-aligned, or if the mapping would mix
    /// 4 KB and 2 MB pages inside one 2 MB-aligned window (the layouts
    /// this simulator generates keep the sizes in disjoint regions).
    pub fn map(&mut self, va: u64, size: PageSize, target_base: u64) {
        assert!(size != PageSize::Huge1G, "1 GB pages are not modeled");
        assert_eq!(va & (size.bytes() - 1), 0, "va {va:#x} not {size}-aligned");
        assert_eq!(target_base & (size.bytes() - 1), 0, "target {target_base:#x} not {size}-aligned");
        debug_assert!(target_base < LEAF_BIT, "target {target_base:#x} collides with the leaf tag");
        let leaf_level = match size {
            PageSize::Small4K => 3, // leaf slot in the L1 node
            PageSize::Large2M => 2, // leaf slot in the L2 node
            PageSize::Huge1G => unreachable!(),
        };
        let mut node = 0usize;
        for shift in &LEVEL_SHIFTS[..leaf_level] {
            let pos = node * NODE_SLOTS + ((va >> shift) & IDX_MASK) as usize;
            let slot = self.slots[pos];
            node = if slot == 0 {
                let child = self.add_node();
                self.slots[pos] = child as u64 + 1;
                child
            } else {
                assert!(
                    slot & LEAF_BIT == 0,
                    "mapping {va:#x} ({size}) under an existing larger-page leaf is not modeled"
                );
                (slot - 1) as usize
            };
        }
        let pos = node * NODE_SLOTS + ((va >> LEVEL_SHIFTS[leaf_level]) & IDX_MASK) as usize;
        let old = self.slots[pos];
        assert!(
            old == 0 || old & LEAF_BIT != 0,
            "2 MB mapping at {va:#x} would overwrite an interior node of 4 KB mappings"
        );
        if old == 0 {
            match size {
                PageSize::Small4K => self.n_small += 1,
                PageSize::Large2M => self.n_large += 1,
                PageSize::Huge1G => unreachable!(),
            }
        }
        self.slots[pos] = target_base | LEAF_BIT;
    }

    /// Translates `va` (any offset), returning the mapped base and size.
    pub fn translate_page(&self, va: u64) -> Option<(u64, PageSize)> {
        let mut node = 0usize;
        for (level, shift) in LEVEL_SHIFTS.iter().enumerate() {
            let slot = self.slots[node * NODE_SLOTS + ((va >> shift) & IDX_MASK) as usize];
            if slot == 0 {
                return None;
            }
            if slot & LEAF_BIT != 0 {
                // A leaf in the L2 node (level 2) is a 2 MB page; in the L1
                // node (level 3) a 4 KB page. Leaves never appear higher
                // (1 GB pages are not modeled).
                let size = if level == 3 { PageSize::Small4K } else { PageSize::Large2M };
                return Some((slot & !LEAF_BIT, size));
            }
            node = (slot - 1) as usize;
        }
        None
    }

    /// Translates `va` fully, carrying the in-page offset across.
    pub fn translate(&self, va: u64) -> Option<u64> {
        self.translate_page(va)
            .map(|(base, size)| base + (va & (size.bytes() - 1)))
    }

    /// The PTE references a hardware walk of `va` performs.
    ///
    /// Returns `None` for unmapped addresses.
    pub fn walk(&self, va: u64) -> Option<WalkPath> {
        let mut pte_addrs = PathLevels::new();
        let mut node_addrs = PathLevels::new();
        let mut node = 0usize;
        for (level, shift) in LEVEL_SHIFTS.iter().enumerate() {
            let idx = ((va >> shift) & IDX_MASK) as usize;
            let slot = self.slots[node * NODE_SLOTS + idx];
            if slot == 0 {
                return None;
            }
            let phys = self.node_phys[node];
            node_addrs.push(phys);
            pte_addrs.push(phys + idx as u64 * PTE_BYTES);
            if slot & LEAF_BIT != 0 {
                let size = if level == 3 { PageSize::Small4K } else { PageSize::Large2M };
                return Some(WalkPath { pte_addrs, node_addrs, target_base: slot & !LEAF_BIT, size });
            }
            node = (slot - 1) as usize;
        }
        None
    }

    /// Removes a mapping (page unmap / remap during shootdown tests).
    /// Returns whether it existed. Interior nodes are retained, as real
    /// kernels retain them.
    pub fn unmap(&mut self, va: u64, size: PageSize) -> bool {
        let leaf_level = match size {
            PageSize::Small4K => 3,
            PageSize::Large2M => 2,
            PageSize::Huge1G => return false,
        };
        let mut node = 0usize;
        for shift in &LEVEL_SHIFTS[..leaf_level] {
            let slot = self.slots[node * NODE_SLOTS + ((va >> shift) & IDX_MASK) as usize];
            if slot == 0 || slot & LEAF_BIT != 0 {
                return false;
            }
            node = (slot - 1) as usize;
        }
        let pos = node * NODE_SLOTS + ((va >> LEVEL_SHIFTS[leaf_level]) & IDX_MASK) as usize;
        if self.slots[pos] & LEAF_BIT == 0 {
            return false; // empty, or an interior node of the other size
        }
        self.slots[pos] = 0;
        match size {
            PageSize::Small4K => self.n_small -= 1,
            PageSize::Large2M => self.n_large -= 1,
            PageSize::Huge1G => unreachable!(),
        }
        true
    }

    /// Drains the list of node pages created since the last call.
    pub fn take_new_nodes(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.new_nodes)
    }

    /// Bytes of node storage allocated so far.
    pub fn node_bytes(&self) -> u64 {
        self.node_phys.len() as u64 * NODE_BYTES
    }

    /// Captures the table's complete state. The arena layout makes this a
    /// handful of `Vec` memcpys — no per-node traversal.
    pub fn snapshot(&self) -> TableSnapshot {
        TableSnapshot {
            root: self.root,
            slots: self.slots.clone(),
            node_phys: self.node_phys.clone(),
            n_small: self.n_small,
            n_large: self.n_large,
            alloc: self.alloc.clone(),
            new_nodes: self.new_nodes.clone(),
        }
    }

    /// Rewinds the table to a previously captured [`TableSnapshot`].
    ///
    /// Restoring into the table that took the snapshot reuses its existing
    /// slot storage (mappings installed since the snapshot only ever *grow*
    /// the arena, so the capacity is already there) — the rewind is a
    /// memcpy, not a reallocation.
    pub fn restore(&mut self, snap: &TableSnapshot) {
        self.root = snap.root;
        self.slots.clear();
        self.slots.extend_from_slice(&snap.slots);
        self.node_phys.clear();
        self.node_phys.extend_from_slice(&snap.node_phys);
        self.n_small = snap.n_small;
        self.n_large = snap.n_large;
        self.alloc = snap.alloc.clone();
        self.new_nodes.clear();
        self.new_nodes.extend_from_slice(&snap.new_nodes);
    }
}

/// A point-in-time copy of one [`RadixPageTable`]'s complete state — the
/// flat slot arena, the node address list, and the frame allocator cursor.
///
/// Because the table is a single contiguous arena, capture and
/// [`RadixPageTable::restore`] are both O(table bytes) memcpys with no
/// pointer graph to chase; this is what makes fork/VM-clone modeling and
/// mid-stream chunk resumption cheap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSnapshot {
    root: u64,
    slots: Vec<u64>,
    node_phys: Vec<u64>,
    n_small: u64,
    n_large: u64,
    alloc: FrameAlloc,
    new_nodes: Vec<u64>,
}

impl TableSnapshot {
    /// Bytes of arena state this snapshot carries (slot words + node list).
    pub fn arena_bytes(&self) -> u64 {
        (self.slots.len() * 8 + self.node_phys.len() * 8) as u64
    }

    /// Number of leaf mappings the captured table held.
    pub fn mapping_count(&self) -> u64 {
        self.n_small + self.n_large
    }
}

// ---------------------------------------------------------------------------
// Physical address-space layout for the two table pairs.
// ---------------------------------------------------------------------------

/// Guest-physical region for guest data frames.
const GPA_DATA_BASE: u64 = 0x0_4000_0000;
const GPA_DATA_SIZE: u64 = 0x40_0000_0000; // 256 GB
/// Guest-physical region for guest page-table nodes.
const GPA_NODE_BASE: u64 = 0x48_0000_0000;
const GPA_NODE_SIZE: u64 = 0x8_0000_0000; // 32 GB

/// Host-physical region for host data frames (guest pages' backing).
const HPA_DATA_BASE: u64 = 0x1_0000_0000;
const HPA_DATA_SIZE: u64 = 0x40_0000_0000;
/// Host-physical region for host page-table nodes.
const HPA_NODE_BASE: u64 = 0x48_0000_0000;
const HPA_NODE_SIZE: u64 = 0x8_0000_0000;

/// The complete translation state of one guest address space: a guest table,
/// the host (EPT-style) table backing it, and the frame allocators.
///
/// In [`WalkMode::Native`] only the host table is used (it maps the
/// process's virtual addresses straight to host-physical frames), giving the
/// 1-D walk the paper's Figure 3 compares against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirtTables {
    mode: WalkMode,
    guest: Option<RadixPageTable>,
    host: RadixPageTable,
    guest_data: FrameAlloc,
    host_data: FrameAlloc,
}

/// Maximum number of disjoint physical regions (concurrent address
/// spaces / VMs) one simulation can host.
pub const MAX_REGIONS: u32 = 64;

impl VirtTables {
    /// Creates empty tables for the given mode in physical region 0.
    pub fn new(mode: WalkMode) -> VirtTables {
        Self::with_region(mode, 0)
    }

    /// Creates empty tables whose host-physical frames come from region
    /// `region` — distinct regions never overlap, so concurrent guests
    /// (SPECrate copies, multiple VMs) occupy disjoint host memory exactly
    /// as a hypervisor would arrange (§3.1: "we ensure that they do not
    /// share the physical memory space").
    ///
    /// # Panics
    ///
    /// Panics if `region >= MAX_REGIONS`.
    pub fn with_region(mode: WalkMode, region: u32) -> VirtTables {
        assert!(region < MAX_REGIONS, "region {region} out of range");
        let data_stride = HPA_DATA_SIZE / MAX_REGIONS as u64;
        let node_stride = HPA_NODE_SIZE / MAX_REGIONS as u64;
        let data_base = HPA_DATA_BASE + region as u64 * data_stride;
        let node_base = HPA_NODE_BASE + region as u64 * node_stride;
        let mut tables = VirtTables {
            mode,
            guest: (mode == WalkMode::Virtualized)
                .then(|| RadixPageTable::new(FrameAlloc::new(GPA_NODE_BASE, GPA_NODE_SIZE))),
            host: RadixPageTable::new(FrameAlloc::new(node_base, node_stride)),
            guest_data: FrameAlloc::new(GPA_DATA_BASE, GPA_DATA_SIZE),
            host_data: FrameAlloc::new(data_base, data_stride),
        };
        // The guest table's root page itself needs host backing.
        tables.back_new_guest_nodes();
        tables
    }

    /// The walk mode.
    pub fn mode(&self) -> WalkMode {
        self.mode
    }

    /// Ensures `gva` is mapped with `size`, allocating frames on first
    /// touch (demand paging at simulation-setup granularity). Returns the
    /// final host-physical base frame.
    ///
    /// # Panics
    ///
    /// Panics if `gva` is already mapped with a *different* size.
    pub fn ensure_mapped(&mut self, gva: Gva, size: PageSize) -> Hpa {
        let va = gva.page_base(size).raw();
        if let Some((base, existing_size)) = self.lookup_page(gva) {
            assert_eq!(
                existing_size, size,
                "page at {gva} already mapped with {existing_size}, requested {size}"
            );
            return base;
        }
        match self.mode {
            WalkMode::Native => {
                let hpa = self.host_data.alloc(size.bytes());
                self.host.map(va, size, hpa);
                Hpa::new(hpa)
            }
            WalkMode::Virtualized => {
                let gpa = self.guest_data.alloc(size.bytes());
                let guest = self.guest.as_mut().expect("virtualized mode has a guest table");
                guest.map(va, size, gpa);
                let hpa = self.host_data.alloc(size.bytes());
                self.host.map(gpa, size, hpa);
                self.back_new_guest_nodes();
                Hpa::new(hpa)
            }
        }
    }

    fn back_new_guest_nodes(&mut self) {
        let Some(guest) = self.guest.as_mut() else { return };
        for node_gpa in guest.take_new_nodes() {
            let hpa = self.host_data.alloc(NODE_BYTES);
            self.host.map(node_gpa, PageSize::Small4K, hpa);
        }
    }

    /// The host-physical base + size of the page containing `gva`, if
    /// mapped.
    pub fn lookup_page(&self, gva: Gva) -> Option<(Hpa, PageSize)> {
        match self.mode {
            WalkMode::Native => self
                .host
                .translate_page(gva.raw())
                .map(|(base, size)| (Hpa::new(base), size)),
            WalkMode::Virtualized => {
                let guest = self.guest.as_ref().expect("virtualized mode has a guest table");
                let (gpa_base, size) = guest.translate_page(gva.raw())?;
                let hpa_base = self
                    .host
                    .translate(gpa_base)
                    .expect("every guest frame is host-backed");
                Some((Hpa::new(hpa_base), size))
            }
        }
    }

    /// Full translation of `gva` including the page offset.
    pub fn translate(&self, gva: Gva) -> Option<Hpa> {
        let (base, size) = self.lookup_page(gva)?;
        Some(Hpa::new(base.raw() + gva.page_offset(size)))
    }

    /// The guest-dimension walk path of `gva` (addresses are gPA).
    ///
    /// `None` in native mode or for unmapped addresses.
    pub fn guest_walk(&self, gva: Gva) -> Option<WalkPath> {
        self.guest.as_ref()?.walk(gva.raw())
    }

    /// The host-dimension walk path of `gpa` (addresses are hPA). In
    /// native mode this is the 1-D walk of a virtual address.
    pub fn host_walk(&self, gpa: Gpa) -> Option<WalkPath> {
        self.host.walk(gpa.raw())
    }

    /// Host translation of a guest-physical address (no walk, for
    /// bookkeeping such as PSC fills).
    pub fn host_translate(&self, gpa: Gpa) -> Option<Hpa> {
        self.host.translate(gpa.raw()).map(Hpa::new)
    }

    /// Guest-dimension page translation: the guest-physical base frame of
    /// the page containing `gva`. In native mode the address is its own
    /// "guest-physical" (there is only one dimension) — this is what a
    /// software TSB handler stores per dimension.
    pub fn guest_translate_page(&self, gva: Gva) -> Option<(Gpa, PageSize)> {
        match self.mode {
            WalkMode::Native => self
                .host
                .translate_page(gva.raw())
                .map(|(_, size)| (Gpa::new(gva.page_base(size).raw()), size)),
            WalkMode::Virtualized => self
                .guest
                .as_ref()
                .expect("virtualized mode has a guest table")
                .translate_page(gva.raw())
                .map(|(base, size)| (Gpa::new(base), size)),
        }
    }

    /// Unmaps `gva`, for shootdown tests. Returns whether it was mapped.
    pub fn unmap(&mut self, gva: Gva, size: PageSize) -> bool {
        match self.mode {
            WalkMode::Native => self.host.unmap(gva.page_base(size).raw(), size),
            WalkMode::Virtualized => self
                .guest
                .as_mut()
                .expect("virtualized mode has a guest table")
                .unmap(gva.page_base(size).raw(), size),
        }
    }

    /// Total page-table node bytes across both dimensions.
    pub fn node_bytes(&self) -> u64 {
        self.host.node_bytes() + self.guest.as_ref().map_or(0, |g| g.node_bytes())
    }

    /// Captures the full translation state of this address space: both
    /// radix tables and both data-frame allocators.
    pub fn snapshot(&self) -> TablesSnapshot {
        TablesSnapshot {
            mode: self.mode,
            guest: self.guest.as_ref().map(RadixPageTable::snapshot),
            host: self.host.snapshot(),
            guest_data: self.guest_data.clone(),
            host_data: self.host_data.clone(),
        }
    }

    /// Rewinds to a previously captured [`TablesSnapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a [`VirtTables`] of the other
    /// [`WalkMode`] — snapshots only rewind the address space they were
    /// taken from (or a clone of it).
    pub fn restore(&mut self, snap: &TablesSnapshot) {
        assert_eq!(self.mode, snap.mode, "snapshot walk mode mismatch");
        match (&mut self.guest, &snap.guest) {
            (Some(table), Some(s)) => table.restore(s),
            (None, None) => {}
            _ => unreachable!("mode equality implies matching guest presence"),
        }
        self.host.restore(&snap.host);
        self.guest_data = snap.guest_data.clone();
        self.host_data = snap.host_data.clone();
    }
}

/// A point-in-time copy of a whole [`VirtTables`] — guest and host
/// [`TableSnapshot`]s plus the data-frame allocator cursors. Captured by
/// [`VirtTables::snapshot`], rewound by [`VirtTables::restore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TablesSnapshot {
    mode: WalkMode,
    guest: Option<TableSnapshot>,
    host: TableSnapshot,
    guest_data: FrameAlloc,
    host_data: FrameAlloc,
}

impl TablesSnapshot {
    /// Total arena bytes across both dimensions.
    pub fn arena_bytes(&self) -> u64 {
        self.host.arena_bytes() + self.guest.as_ref().map_or(0, TableSnapshot::arena_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_alloc_aligns() {
        let mut a = FrameAlloc::new(0x1000, 1 << 30);
        let x = a.alloc(4096);
        assert_eq!(x % 4096, 0);
        let y = a.alloc(2 << 20);
        assert_eq!(y % (2 << 20), 0);
        assert!(y > x);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn frame_alloc_exhausts() {
        let mut a = FrameAlloc::new(0, 8192);
        a.alloc(4096);
        a.alloc(4096);
        a.alloc(4096);
    }

    #[test]
    fn map_then_translate_4k() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x7fff_0000_1000, PageSize::Small4K, 0x1234_5000);
        assert_eq!(t.translate(0x7fff_0000_1abc), Some(0x1234_5abc));
        assert_eq!(t.translate(0x7fff_0000_2000), None);
    }

    #[test]
    fn map_then_translate_2m() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x4000_0000, PageSize::Large2M, 0x8000_0000);
        assert_eq!(t.translate(0x4000_0000 + 0x12345), Some(0x8000_0000 + 0x12345));
    }

    #[test]
    fn walk_4k_has_four_levels() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x5000_0000_0000, PageSize::Small4K, 0x9000);
        let w = t.walk(0x5000_0000_0123).unwrap();
        assert_eq!(w.pte_addrs.len(), 4);
        assert_eq!(w.node_addrs.len(), 4);
        assert_eq!(w.size, PageSize::Small4K);
        assert_eq!(w.target_base, 0x9000);
        assert_eq!(w.node_addrs[0], t.root());
        // Every PTE lies inside its node.
        for (pte, node) in w.pte_addrs.iter().zip(&w.node_addrs) {
            assert!(pte >= node && *pte < node + 4096);
            assert_eq!((pte - node) % 8, 0);
        }
    }

    #[test]
    fn walk_2m_has_three_levels() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x5000_0020_0000, PageSize::Large2M, 0x4000_0000);
        let w = t.walk(0x5000_0020_1000).unwrap();
        assert_eq!(w.pte_addrs.len(), 3);
        assert_eq!(w.size, PageSize::Large2M);
    }

    #[test]
    fn adjacent_pages_share_nodes() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x1000_0000_0000, PageSize::Small4K, 0x1000);
        let nodes_before = t.node_bytes();
        t.map(0x1000_0000_1000, PageSize::Small4K, 0x2000);
        assert_eq!(t.node_bytes(), nodes_before, "same L1 node must be reused");
        let w1 = t.walk(0x1000_0000_0000).unwrap();
        let w2 = t.walk(0x1000_0000_1000).unwrap();
        assert_eq!(w1.node_addrs, w2.node_addrs);
        assert_ne!(w1.pte_addrs[3], w2.pte_addrs[3]);
        assert_eq!(w1.pte_addrs[..3], w2.pte_addrs[..3]);
    }

    #[test]
    fn distant_pages_use_distinct_nodes() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x1000_0000_0000, PageSize::Small4K, 0x1000);
        t.map(0x2000_0000_0000, PageSize::Small4K, 0x2000);
        let w1 = t.walk(0x1000_0000_0000).unwrap();
        let w2 = t.walk(0x2000_0000_0000).unwrap();
        assert_eq!(w1.node_addrs[0], w2.node_addrs[0], "shared root");
        assert_ne!(w1.node_addrs[1], w2.node_addrs[1]);
    }

    #[test]
    fn unmap_removes_only_leaf() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x1000, PageSize::Small4K, 0x9000);
        assert!(t.unmap(0x1000, PageSize::Small4K));
        assert_eq!(t.translate(0x1000), None);
        assert!(!t.unmap(0x1000, PageSize::Small4K));
    }

    #[test]
    fn remap_after_unmap_reuses_nodes() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x1000, PageSize::Small4K, 0x9000);
        let nodes_before = t.node_bytes();
        assert!(t.unmap(0x1000, PageSize::Small4K));
        t.map(0x1000, PageSize::Small4K, 0xa000);
        assert_eq!(t.node_bytes(), nodes_before, "interior chain is retained");
        assert_eq!(t.translate(0x1000), Some(0xa000));
        assert_eq!(t.mapping_count(), 1);
    }

    #[test]
    fn mapping_count_tracks_both_sizes() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x1000_0000_0000, PageSize::Small4K, 0x1000);
        t.map(0x2000_0020_0000, PageSize::Large2M, 0x4000_0000);
        assert_eq!(t.mapping_count(), 2);
        // Re-mapping in place does not double-count.
        t.map(0x1000_0000_0000, PageSize::Small4K, 0x3000);
        assert_eq!(t.mapping_count(), 2);
        assert!(t.unmap(0x2000_0020_0000, PageSize::Large2M));
        assert_eq!(t.mapping_count(), 1);
    }

    #[test]
    fn unmap_with_wrong_size_is_a_no_op() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x5000_0000_0000, PageSize::Small4K, 0x9000);
        assert!(!t.unmap(0x5000_0000_0000, PageSize::Large2M));
        assert_eq!(t.translate(0x5000_0000_0000), Some(0x9000));
        t.map(0x6000_0020_0000, PageSize::Large2M, 0x4000_0000);
        assert!(!t.unmap(0x6000_0020_0000, PageSize::Small4K));
        assert_eq!(t.translate_page(0x6000_0020_0000), Some((0x4000_0000, PageSize::Large2M)));
    }

    #[test]
    fn virtualized_round_trip() {
        let mut vt = VirtTables::new(WalkMode::Virtualized);
        let gva = Gva::new(0x1000_0000_0000);
        let hpa = vt.ensure_mapped(gva, PageSize::Small4K);
        assert_eq!(vt.translate(gva), Some(hpa));
        assert_eq!(
            vt.translate(Gva::new(gva.raw() + 0x7ff)),
            Some(Hpa::new(hpa.raw() + 0x7ff))
        );
        // Idempotent.
        assert_eq!(vt.ensure_mapped(gva, PageSize::Small4K), hpa);
    }

    #[test]
    fn native_round_trip() {
        let mut vt = VirtTables::new(WalkMode::Native);
        let gva = Gva::new(0x2000_0000_0000);
        let hpa = vt.ensure_mapped(gva, PageSize::Large2M);
        assert_eq!(vt.lookup_page(gva), Some((hpa, PageSize::Large2M)));
        assert!(vt.guest_walk(gva).is_none(), "no guest dimension natively");
        let w = vt.host_walk(Gpa::new(gva.raw())).unwrap();
        assert_eq!(w.pte_addrs.len(), 3);
    }

    #[test]
    fn guest_ptes_are_host_backed() {
        let mut vt = VirtTables::new(WalkMode::Virtualized);
        let gva = Gva::new(0x1000_0000_0000);
        vt.ensure_mapped(gva, PageSize::Small4K);
        let gw = vt.guest_walk(gva).expect("guest walk exists");
        assert_eq!(gw.pte_addrs.len(), 4);
        for pte_gpa in &gw.pte_addrs {
            let hw = vt.host_walk(Gpa::new(*pte_gpa));
            assert!(hw.is_some(), "guest PTE at gPA {pte_gpa:#x} must be host-walkable");
            assert!(vt.host_translate(Gpa::new(*pte_gpa)).is_some());
        }
    }

    #[test]
    fn twenty_four_reference_geometry() {
        // Figure 1: 4 guest levels x (4 host + 1 guest) + 4 final host = 24.
        let mut vt = VirtTables::new(WalkMode::Virtualized);
        let gva = Gva::new(0x1000_0000_0000);
        vt.ensure_mapped(gva, PageSize::Small4K);
        let gw = vt.guest_walk(gva).unwrap();
        let mut refs = 0;
        for pte_gpa in &gw.pte_addrs {
            refs += vt.host_walk(Gpa::new(*pte_gpa)).unwrap().pte_addrs.len(); // nested host
            refs += 1; // the guest PTE itself
        }
        let (gpa_base, _) = vt
            .guest
            .as_ref()
            .unwrap()
            .translate_page(gva.raw())
            .unwrap();
        refs += vt.host_walk(Gpa::new(gpa_base)).unwrap().pte_addrs.len();
        assert_eq!(refs, 24);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn remap_with_different_size_panics() {
        let mut vt = VirtTables::new(WalkMode::Native);
        vt.ensure_mapped(Gva::new(0x4000_0000), PageSize::Large2M);
        vt.ensure_mapped(Gva::new(0x4000_0000), PageSize::Small4K);
    }

    #[test]
    fn unmap_breaks_translation() {
        let mut vt = VirtTables::new(WalkMode::Virtualized);
        let gva = Gva::new(0x1000_0000_0000);
        vt.ensure_mapped(gva, PageSize::Small4K);
        assert!(vt.unmap(gva, PageSize::Small4K));
        assert_eq!(vt.translate(gva), None);
    }

    #[test]
    fn snapshot_restore_rewinds_mappings() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x1000_0000_0000, PageSize::Small4K, 0x1000);
        t.map(0x2000_0020_0000, PageSize::Large2M, 0x4000_0000);
        let snap = t.snapshot();
        let bytes_at_snap = t.node_bytes();

        // Diverge: add, remove, and remap.
        t.map(0x3000_0000_0000, PageSize::Small4K, 0x5000);
        t.map(0x1000_0000_0000, PageSize::Small4K, 0x7000);
        assert!(t.unmap(0x2000_0020_0000, PageSize::Large2M));
        assert!(t.node_bytes() > bytes_at_snap);

        t.restore(&snap);
        assert_eq!(t.node_bytes(), bytes_at_snap);
        assert_eq!(t.mapping_count(), 2);
        assert_eq!(t.translate(0x1000_0000_0000), Some(0x1000));
        assert_eq!(t.translate_page(0x2000_0020_0000), Some((0x4000_0000, PageSize::Large2M)));
        assert_eq!(t.translate(0x3000_0000_0000), None);
        // The allocator cursor rewound too: mapping again reuses the same
        // frames the diverged timeline consumed.
        t.map(0x3000_0000_0000, PageSize::Small4K, 0x5000);
        assert_eq!(t.translate(0x3000_0000_0000), Some(0x5000));
    }

    #[test]
    fn snapshot_is_immutable_under_later_edits() {
        let mut t = RadixPageTable::new(FrameAlloc::new(0x10_0000, 1 << 30));
        t.map(0x1000, PageSize::Small4K, 0x9000);
        let snap = t.snapshot();
        let count = snap.mapping_count();
        t.map(0x2000, PageSize::Small4K, 0xa000);
        t.map(0x3000, PageSize::Small4K, 0xb000);
        assert_eq!(snap.mapping_count(), count, "snapshot is a copy, not a view");
        t.restore(&snap);
        assert_eq!(t.mapping_count(), 1);
        assert_eq!(t.translate(0x2000), None);
    }

    #[test]
    fn virt_tables_snapshot_round_trip() {
        let mut vt = VirtTables::new(WalkMode::Virtualized);
        let gva_a = Gva::new(0x1000_0000_0000);
        let hpa_a = vt.ensure_mapped(gva_a, PageSize::Small4K);
        let snap = vt.snapshot();
        assert!(snap.arena_bytes() > 0);

        let gva_b = Gva::new(0x2000_0000_0000);
        vt.ensure_mapped(gva_b, PageSize::Small4K);
        assert!(vt.unmap(gva_a, PageSize::Small4K));

        vt.restore(&snap);
        assert_eq!(vt.translate(gva_a), Some(hpa_a));
        assert_eq!(vt.translate(gva_b), None);
        // Re-running the diverged history replays identically: demand
        // allocation is deterministic from the rewound cursors.
        let hpa_b1 = vt.ensure_mapped(gva_b, PageSize::Small4K);
        vt.restore(&snap);
        let hpa_b2 = vt.ensure_mapped(gva_b, PageSize::Small4K);
        assert_eq!(hpa_b1, hpa_b2);
    }

    #[test]
    fn snapshot_restores_across_clones() {
        // Fork modeling: clone the space, diverge the child, and verify the
        // parent's snapshot still rewinds the child to the fork point.
        let mut parent = VirtTables::new(WalkMode::Virtualized);
        let gva = Gva::new(0x1000_0000_0000);
        let hpa = parent.ensure_mapped(gva, PageSize::Small4K);
        let fork_point = parent.snapshot();
        let mut child = parent.clone();
        child.ensure_mapped(Gva::new(0x7000_0000_0000), PageSize::Small4K);
        assert!(child.unmap(gva, PageSize::Small4K));
        child.restore(&fork_point);
        assert_eq!(child.translate(gva), Some(hpa));
        assert_eq!(child.translate(Gva::new(0x7000_0000_0000)), None);
    }

    #[test]
    #[should_panic(expected = "walk mode mismatch")]
    fn snapshot_mode_mismatch_panics() {
        let native = VirtTables::new(WalkMode::Native);
        let mut virt = VirtTables::new(WalkMode::Virtualized);
        virt.restore(&native.snapshot());
    }

    #[test]
    fn data_and_node_regions_disjoint() {
        let mut vt = VirtTables::new(WalkMode::Virtualized);
        let hpa = vt.ensure_mapped(Gva::new(0x1000_0000_0000), PageSize::Small4K);
        let gw = vt.guest_walk(Gva::new(0x1000_0000_0000)).unwrap();
        let hw = vt.host_walk(Gpa::new(gw.pte_addrs[0])).unwrap();
        // Host node addresses and host data frames must not overlap.
        for node in &hw.node_addrs {
            assert!(*node >= HPA_NODE_BASE);
        }
        assert!(hpa.raw() < HPA_NODE_BASE);
    }
}
