//! The SPARC Translation Storage Buffer baseline (§3.3, §4.1).
//!
//! The TSB is the closest existing system feature to the POM-TLB: a very
//! large translation buffer held in ordinary DRAM. The paper credits its
//! comparatively poor showing (4.27 % mean improvement vs POM-TLB's 9.57 %)
//! to three structural properties, all modeled here:
//!
//! 1. **software management** — every L2 TLB miss raises an OS trap before
//!    the TSB can even be indexed;
//! 2. **direct-mapped organization** — one candidate entry per index, so
//!    conflict misses are frequent (POM-TLB is 4-way within a single burst);
//! 3. **per-dimension entries** — TSB entries are not direct gVA→hPA
//!    translations, so a virtualized lookup needs one access for the guest
//!    dimension and one for the host dimension.
//!
//! TSB lines are ordinary cacheable kernel memory, so the handler's loads
//! probe the L2/L3 data caches before DRAM — the paper's criticisms are the
//! trap, the per-dimension double access, and the direct-mapped conflicts,
//! not uncachedness.

use pomtlb_cache::Hierarchy;
use pomtlb_dram::Channel;
use pomtlb_types::{AddressSpace, CoreId, Cycles, Gva, Hpa, PageSize, Vpn};
use serde::{Deserialize, Serialize};

/// TSB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TsbConfig {
    /// Total capacity in bytes (paper: 16 MB, same as the POM-TLB).
    pub capacity_bytes: u64,
    /// Bytes per TSB entry (16, as in the POM-TLB entry format).
    pub entry_bytes: u64,
    /// Cycles to enter and leave the OS trap handler on an L2 TLB miss.
    pub trap_cycles: Cycles,
    /// Base host-physical address of the buffer.
    pub base: Hpa,
}

impl Default for TsbConfig {
    fn default() -> Self {
        TsbConfig {
            capacity_bytes: 16 << 20,
            entry_bytes: 16,
            // SPARC spill/fill-style trap entry + handler prologue/epilogue.
            trap_cycles: Cycles::new(40),
            base: Hpa::new(0x70_0000_0000),
        }
    }
}

/// Result of a TSB translation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsbOutcome {
    /// The translation, if both dimensions hit.
    pub page_base: Option<Hpa>,
    /// The page size of the hit (valid when `page_base` is `Some`).
    pub size: PageSize,
    /// Cycles spent in the trap handler and TSB probes. On a miss the
    /// caller adds the software page-walk cost on top.
    pub latency: Cycles,
    /// DRAM accesses performed (1 per dimension probed).
    pub accesses: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct TsbEntry {
    space: AddressSpace,
    vpn: u64,
    target: u64,
    size: PageSize,
}

/// A direct-mapped, software-managed translation storage buffer in DRAM.
///
/// The guest dimension (gVA→gPA) and host dimension (gPA→hPA) share the
/// buffer, each hashed with a dimension salt, mirroring how SPARC kernels
/// keep separate TSBs per context in one memory pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tsb {
    config: TsbConfig,
    slots: Vec<Option<TsbEntry>>,
    hits: u64,
    misses: u64,
    conflicts: u64,
}

const GUEST_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const HOST_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;

impl Tsb {
    /// Builds an empty TSB.
    ///
    /// # Panics
    ///
    /// Panics if the slot count is not a power of two.
    pub fn new(config: TsbConfig) -> Tsb {
        let slots = config.capacity_bytes / config.entry_bytes;
        assert!(slots.is_power_of_two(), "TSB slot count must be a power of two");
        Tsb { config, slots: vec![None; slots as usize], hits: 0, misses: 0, conflicts: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &TsbConfig {
        &self.config
    }

    fn index(&self, space: AddressSpace, vpn: u64, salt: u64) -> usize {
        let h = (vpn ^ space.vm.as_u64().rotate_left(24) ^ space.process.as_u64().rotate_left(40))
            .wrapping_mul(salt);
        (h % self.slots.len() as u64) as usize
    }

    fn slot_addr(&self, index: usize) -> Hpa {
        Hpa::new(self.config.base.raw() + index as u64 * self.config.entry_bytes)
    }

    /// Attempts a full virtualized translation of `gva`: trap, then a
    /// guest-dimension probe, then (on a guest hit) a host-dimension probe.
    /// Each probe is an ordinary cacheable load from `core`: L2D$ → L3D$ →
    /// DRAM, starting at `now`.
    #[allow(clippy::too_many_arguments)]
    pub fn translate(
        &mut self,
        core: CoreId,
        space: AddressSpace,
        gva: Gva,
        size_hint: PageSize,
        hier: &mut Hierarchy,
        dram: &mut Channel,
        now: Cycles,
    ) -> TsbOutcome {
        let mut latency = self.config.trap_cycles;
        let mut accesses = 0u32;

        // Guest dimension: gVA -> gPA.
        let gidx = self.index(space, Vpn::of(gva, size_hint).0, GUEST_SALT);
        latency += self.load(core, self.slot_addr(gidx), hier, dram, now + latency);
        accesses += 1;
        let guest_hit = self.probe(gidx, space, Vpn::of(gva, size_hint).0);
        let Some((gpa_base, size)) = guest_hit else {
            self.misses += 1;
            return TsbOutcome { page_base: None, size: size_hint, latency, accesses };
        };

        // Host dimension: gPA -> hPA.
        let hvpn = gpa_base >> size.shift();
        let hidx = self.index(space, hvpn ^ HOST_SALT, HOST_SALT);
        latency += self.load(core, self.slot_addr(hidx), hier, dram, now + latency);
        accesses += 1;
        match self.probe(hidx, space, hvpn ^ HOST_SALT) {
            Some((hpa_base, _)) => {
                self.hits += 1;
                TsbOutcome { page_base: Some(Hpa::new(hpa_base)), size, latency, accesses }
            }
            None => {
                self.misses += 1;
                TsbOutcome { page_base: None, size, latency, accesses }
            }
        }
    }

    /// One cacheable TSB load: L2D$ → L3D$ → DRAM.
    fn load(
        &self,
        core: CoreId,
        addr: Hpa,
        hier: &mut Hierarchy,
        dram: &mut Channel,
        now: Cycles,
    ) -> Cycles {
        let probe = hier.access_tlb_line(core, addr, false);
        if probe.hit() {
            probe.latency
        } else {
            probe.latency + dram.access(addr, now + probe.latency).latency
        }
    }

    fn probe(&self, index: usize, space: AddressSpace, vpn: u64) -> Option<(u64, PageSize)> {
        self.slots[index]
            .filter(|e| e.space == space && e.vpn == vpn)
            .map(|e| (e.target, e.size))
    }

    /// Installs both dimensions of a resolved translation (the OS handler
    /// refills the TSB after a software walk).
    pub fn fill(
        &mut self,
        space: AddressSpace,
        gva: Gva,
        size: PageSize,
        gpa_base: u64,
        hpa_base: Hpa,
    ) {
        let gvpn = Vpn::of(gva, size).0;
        let gidx = self.index(space, gvpn, GUEST_SALT);
        if self.slots[gidx].is_some_and(|e| !(e.space == space && e.vpn == gvpn)) {
            self.conflicts += 1;
        }
        self.slots[gidx] = Some(TsbEntry { space, vpn: gvpn, target: gpa_base, size });

        let hvpn = (gpa_base >> size.shift()) ^ HOST_SALT;
        let hidx = self.index(space, hvpn, HOST_SALT);
        if self.slots[hidx].is_some_and(|e| !(e.space == space && e.vpn == hvpn)) {
            self.conflicts += 1;
        }
        self.slots[hidx] = Some(TsbEntry { space, vpn: hvpn, target: hpa_base.raw(), size });
    }

    /// Shootdown of one translation. Returns whether the guest-dimension
    /// entry was present.
    pub fn invalidate(&mut self, space: AddressSpace, gva: Gva, size: PageSize) -> bool {
        let gvpn = Vpn::of(gva, size).0;
        let gidx = self.index(space, gvpn, GUEST_SALT);
        if self.slots[gidx].is_some_and(|e| e.space == space && e.vpn == gvpn) {
            self.slots[gidx] = None;
            true
        } else {
            false
        }
    }

    /// Flushes every slot belonging to a VM (VM teardown), in both the
    /// guest and host dimensions. Returns the number of slots dropped.
    pub fn flush_vm(&mut self, vm: pomtlb_types::VmId) -> u64 {
        let mut dropped = 0;
        for slot in &mut self.slots {
            if slot.is_some_and(|e| e.space.vm == vm) {
                *slot = None;
                dropped += 1;
            }
        }
        dropped
    }

    /// Completed translations (both dimensions hit).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Failed translations.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fills that displaced a live entry for a different page.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomtlb_cache::HierarchyConfig;
    use pomtlb_dram::DramTiming;
    use pomtlb_types::{ProcessId, VmId};

    fn small_tsb() -> Tsb {
        Tsb::new(TsbConfig { capacity_bytes: 1 << 10, ..Default::default() }) // 64 slots
    }

    fn dram() -> Channel {
        Channel::new(DramTiming::die_stacked(4.0), 8)
    }

    fn hier() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default(), 1)
    }

    fn space() -> AddressSpace {
        AddressSpace::new(VmId(0), ProcessId(0))
    }

    #[test]
    fn miss_costs_trap_plus_one_access() {
        let mut tsb = small_tsb();
        let mut d = dram();
        let mut h = hier();
        let out = tsb.translate(CoreId(0), space(), Gva::new(0x1000), PageSize::Small4K, &mut h, &mut d, Cycles::ZERO);
        assert!(out.page_base.is_none());
        assert_eq!(out.accesses, 1, "guest-dimension probe only");
        assert!(out.latency >= tsb.config().trap_cycles);
        assert_eq!(tsb.misses(), 1);
    }

    #[test]
    fn fill_then_hit_needs_two_accesses() {
        let mut tsb = small_tsb();
        let mut d = dram();
        let mut h = hier();
        let gva = Gva::new(0x1000);
        tsb.fill(space(), gva, PageSize::Small4K, 0x40_0000, Hpa::new(0x9_0000));
        let out = tsb.translate(CoreId(0), space(), gva, PageSize::Small4K, &mut h, &mut d, Cycles::ZERO);
        assert_eq!(out.page_base, Some(Hpa::new(0x9_0000)));
        assert_eq!(out.accesses, 2, "guest + host dimension probes");
        assert_eq!(tsb.hits(), 1);
    }

    #[test]
    fn trap_overhead_always_charged() {
        let mut tsb = small_tsb();
        let mut d = dram();
        let mut h = hier();
        let gva = Gva::new(0x1000);
        tsb.fill(space(), gva, PageSize::Small4K, 0x40_0000, Hpa::new(0x9_0000));
        let out = tsb.translate(CoreId(0), space(), gva, PageSize::Small4K, &mut h, &mut d, Cycles::ZERO);
        assert!(out.latency >= tsb.config().trap_cycles + Cycles::new(2 * 12));
    }

    #[test]
    fn direct_mapping_conflicts() {
        let mut tsb = small_tsb();
        // Fill far more translations than slots: conflicts must occur.
        for i in 0..256u64 {
            tsb.fill(
                space(),
                Gva::new(i << 12),
                PageSize::Small4K,
                0x40_0000 + (i << 12),
                Hpa::new(0x100_0000 + (i << 12)),
            );
        }
        assert!(tsb.conflicts() > 0, "direct-mapped TSB must conflict");
    }

    #[test]
    fn invalidate_breaks_translation() {
        let mut tsb = small_tsb();
        let mut d = dram();
        let mut h = hier();
        let gva = Gva::new(0x1000);
        tsb.fill(space(), gva, PageSize::Small4K, 0x40_0000, Hpa::new(0x9_0000));
        assert!(tsb.invalidate(space(), gva, PageSize::Small4K));
        let out = tsb.translate(CoreId(0), space(), gva, PageSize::Small4K, &mut h, &mut d, Cycles::ZERO);
        assert!(out.page_base.is_none());
        assert!(!tsb.invalidate(space(), gva, PageSize::Small4K));
    }

    #[test]
    fn spaces_are_isolated() {
        let mut tsb = small_tsb();
        let mut d = dram();
        let mut h = hier();
        let other = AddressSpace::new(VmId(1), ProcessId(0));
        let gva = Gva::new(0x1000);
        tsb.fill(space(), gva, PageSize::Small4K, 0x40_0000, Hpa::new(0x9_0000));
        let out = tsb.translate(CoreId(0), other, gva, PageSize::Small4K, &mut h, &mut d, Cycles::ZERO);
        assert!(out.page_base.is_none());
    }

    #[test]
    fn large_page_translations() {
        let mut tsb = small_tsb();
        let mut d = dram();
        let mut h = hier();
        let gva = Gva::new(0x4000_0000);
        tsb.fill(space(), gva, PageSize::Large2M, 0x4000_0000, Hpa::new(0x8000_0000));
        let out = tsb.translate(CoreId(0), space(), gva, PageSize::Large2M, &mut h, &mut d, Cycles::ZERO);
        assert_eq!(out.page_base, Some(Hpa::new(0x8000_0000)));
        assert_eq!(out.size, PageSize::Large2M);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_capacity() {
        Tsb::new(TsbConfig { capacity_bytes: 3000, ..Default::default() });
    }

    #[test]
    fn default_is_16mb() {
        let t = Tsb::new(TsbConfig::default());
        assert_eq!(t.config().capacity_bytes, 16 << 20);
        assert_eq!(t.slots.len(), (16 << 20) / 16);
    }
}
