//! A set-associative SRAM TLB with true-LRU replacement.

use pomtlb_types::{AddressSpace, Gva, Hpa, PageSize, Vpn};
use serde::{Deserialize, Serialize};

use crate::config::TlbConfig;

/// The payload of a successful TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbLookup {
    /// Base host-physical address of the translated page.
    pub page_base: Hpa,
    /// The page size the entry maps.
    pub size: PageSize,
}

/// Hit/miss counters for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by inserts.
    pub evictions: u64,
    /// Entries removed by shootdowns/flushes.
    pub invalidations: u64,
}

impl TlbStats {
    /// Hit rate in [0,1]; zero with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Entry {
    valid: bool,
    space: AddressSpace,
    vpn: u64,
    page_base: u64,
    size: PageSize,
    stamp: u64,
}

const INVALID: Entry = Entry {
    valid: false,
    space: AddressSpace { vm: pomtlb_types::VmId(0), process: pomtlb_types::ProcessId(0) },
    vpn: 0,
    page_base: 0,
    size: PageSize::Small4K,
    stamp: 0,
};

/// A set-associative, true-LRU SRAM TLB.
///
/// Entries are tagged with the full [`AddressSpace`] (VM ID + process ID),
/// so translations from multiple VMs coexist without flushes — the same
/// property the POM-TLB's entry format provides (Figure 5).
///
/// One instance maps one page size when used as an L1; the unified L2 holds
/// mixed sizes (the set index uses the entry's own size's VPN, so lookups
/// probe once per candidate size, as real unified TLBs do).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SramTlb {
    config: TlbConfig,
    sets: u32,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two (all shipped geometries),
    /// so the per-lookup set index is a mask instead of a `%`. Zero means
    /// "not a power of two, divide".
    set_mask: u64,
    entries: Vec<Entry>,
    clock: u64,
    stats: TlbStats,
}

impl SramTlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`TlbConfig::sets`]).
    pub fn new(config: TlbConfig) -> SramTlb {
        let sets = config.sets();
        SramTlb {
            config,
            sets,
            ways: config.ways as usize,
            set_mask: if sets.is_power_of_two() { (sets - 1) as u64 } else { 0 },
            entries: vec![INVALID; (sets * config.ways) as usize],
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    #[inline]
    fn set_of(&self, vpn: u64, space: AddressSpace) -> usize {
        // XOR the VM id in to spread VMs across sets, as Eq. (1) does for
        // the POM-TLB.
        let hash = vpn ^ space.vm.as_u64();
        let set = if self.set_mask != 0 { hash & self.set_mask } else { hash % self.sets as u64 };
        set as usize * self.ways
    }

    /// Looks up the translation of `va` assuming page size `size`.
    ///
    /// A unified TLB caller probes once per size it may hold.
    pub fn lookup(&mut self, space: AddressSpace, va: Gva, size: PageSize) -> Option<TlbLookup> {
        self.clock += 1;
        let vpn = Vpn::of(va, size).0;
        let base = self.set_of(vpn, space);
        let clock = self.clock;
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.space == space && e.vpn == vpn && e.size == size {
                e.stamp = clock;
                self.stats.hits += 1;
                return Some(TlbLookup { page_base: Hpa::new(e.page_base), size });
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Probes without updating LRU or statistics.
    pub fn contains(&self, space: AddressSpace, va: Gva, size: PageSize) -> bool {
        let vpn = Vpn::of(va, size).0;
        let base = self.set_of(vpn, space);
        self.entries[base..base + self.ways]
            .iter()
            .any(|e| e.valid && e.space == space && e.vpn == vpn && e.size == size)
    }

    /// Installs (or refreshes) a translation. Returns `true` if an existing
    /// valid entry was displaced.
    pub fn insert(&mut self, space: AddressSpace, va: Gva, size: PageSize, page_base: Hpa) -> bool {
        self.clock += 1;
        let vpn = Vpn::of(va, size).0;
        let base = self.set_of(vpn, space);
        let clock = self.clock;
        let set = &mut self.entries[base..base + self.ways];
        // Refresh in place if already present.
        if let Some(e) = set
            .iter_mut()
            .find(|e| e.valid && e.space == space && e.vpn == vpn && e.size == size)
        {
            e.page_base = page_base.raw();
            e.stamp = clock;
            return false;
        }
        let way = (0..set.len())
            .find(|&w| !set[w].valid)
            .unwrap_or_else(|| (0..set.len()).min_by_key(|&w| set[w].stamp).expect("ways > 0"));
        let displaced = set[way].valid;
        set[way] = Entry {
            valid: true,
            space,
            vpn,
            page_base: page_base.raw(),
            size,
            stamp: clock,
        };
        if displaced {
            self.stats.evictions += 1;
        }
        displaced
    }

    /// Shootdown of one page's translation. Returns whether it was present.
    pub fn invalidate_page(&mut self, space: AddressSpace, va: Gva, size: PageSize) -> bool {
        let vpn = Vpn::of(va, size).0;
        let base = self.set_of(vpn, space);
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.space == space && e.vpn == vpn && e.size == size {
                e.valid = false;
                self.stats.invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Flushes every entry belonging to a VM (VM teardown). Returns the
    /// number of entries dropped.
    pub fn flush_vm(&mut self, vm: pomtlb_types::VmId) -> u64 {
        let mut dropped = 0;
        for e in &mut self.entries {
            if e.valid && e.space.vm == vm {
                e.valid = false;
                dropped += 1;
            }
        }
        self.stats.invalidations += dropped;
        dropped
    }

    /// Flushes every entry belonging to one address space — a CR3 switch
    /// without PCID, a process teardown, or the process migrating off this
    /// core. Returns the number of entries dropped.
    pub fn flush_space(&mut self, space: AddressSpace) -> u64 {
        let mut dropped = 0;
        for e in &mut self.entries {
            if e.valid && e.space == space {
                e.valid = false;
                dropped += 1;
            }
        }
        self.stats.invalidations += dropped;
        dropped
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> u64 {
        self.entries.iter().filter(|e| e.valid).count() as u64
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets statistics without flushing entries.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomtlb_types::{ProcessId, VmId};
    use proptest::prelude::*;

    fn space(vm: u16, pid: u16) -> AddressSpace {
        AddressSpace::new(VmId(vm), ProcessId(pid))
    }

    fn tiny() -> SramTlb {
        SramTlb::new(TlbConfig::new(8, 2, 9)) // 4 sets x 2 ways
    }

    #[test]
    fn miss_then_hit_after_insert() {
        let mut t = tiny();
        let s = space(0, 0);
        let va = Gva::new(0x5000);
        assert!(t.lookup(s, va, PageSize::Small4K).is_none());
        t.insert(s, va, PageSize::Small4K, Hpa::new(0x9000));
        let hit = t.lookup(s, va, PageSize::Small4K).expect("must hit");
        assert_eq!(hit.page_base, Hpa::new(0x9000));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn same_page_different_space_misses() {
        let mut t = tiny();
        let va = Gva::new(0x5000);
        t.insert(space(1, 1), va, PageSize::Small4K, Hpa::new(0x9000));
        assert!(t.lookup(space(1, 2), va, PageSize::Small4K).is_none());
        assert!(t.lookup(space(2, 1), va, PageSize::Small4K).is_none());
        assert!(t.lookup(space(1, 1), va, PageSize::Small4K).is_some());
    }

    #[test]
    fn sizes_are_distinct_tags() {
        let mut t = tiny();
        let s = space(0, 0);
        let va = Gva::new(0x20_0000);
        t.insert(s, va, PageSize::Large2M, Hpa::new(0x4000_0000));
        assert!(t.lookup(s, va, PageSize::Small4K).is_none());
        assert!(t.lookup(s, va, PageSize::Large2M).is_some());
    }

    #[test]
    fn lru_within_set() {
        let mut t = tiny();
        let s = space(0, 0);
        // VPNs 0, 4, 8 all map to set 0 (4 sets).
        let a = Gva::new(0 << 12);
        let b = Gva::new(4 << 12);
        let c = Gva::new(8 << 12);
        t.insert(s, a, PageSize::Small4K, Hpa::new(0x1000));
        t.insert(s, b, PageSize::Small4K, Hpa::new(0x2000));
        t.lookup(s, a, PageSize::Small4K); // a becomes MRU
        t.insert(s, c, PageSize::Small4K, Hpa::new(0x3000)); // evicts b
        assert!(t.contains(s, a, PageSize::Small4K));
        assert!(!t.contains(s, b, PageSize::Small4K));
        assert!(t.contains(s, c, PageSize::Small4K));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn insert_refreshes_existing() {
        let mut t = tiny();
        let s = space(0, 0);
        let va = Gva::new(0x7000);
        t.insert(s, va, PageSize::Small4K, Hpa::new(0x1000));
        let displaced = t.insert(s, va, PageSize::Small4K, Hpa::new(0x2000));
        assert!(!displaced);
        assert_eq!(t.occupancy(), 1);
        assert_eq!(
            t.lookup(s, va, PageSize::Small4K).unwrap().page_base,
            Hpa::new(0x2000)
        );
    }

    #[test]
    fn invalidate_page_removes_entry() {
        let mut t = tiny();
        let s = space(0, 0);
        let va = Gva::new(0x7000);
        t.insert(s, va, PageSize::Small4K, Hpa::new(0x1000));
        assert!(t.invalidate_page(s, va, PageSize::Small4K));
        assert!(!t.contains(s, va, PageSize::Small4K));
        assert!(!t.invalidate_page(s, va, PageSize::Small4K));
        assert_eq!(t.stats().invalidations, 1);
    }

    #[test]
    fn flush_vm_spares_other_vms() {
        let mut t = tiny();
        t.insert(space(1, 0), Gva::new(0x1000), PageSize::Small4K, Hpa::new(0x1000));
        t.insert(space(1, 1), Gva::new(0x2000), PageSize::Small4K, Hpa::new(0x2000));
        t.insert(space(2, 0), Gva::new(0x3000), PageSize::Small4K, Hpa::new(0x3000));
        assert_eq!(t.flush_vm(VmId(1)), 2);
        assert_eq!(t.occupancy(), 1);
        assert!(t.contains(space(2, 0), Gva::new(0x3000), PageSize::Small4K));
    }

    #[test]
    fn flush_space_spares_other_processes_and_counts_invalidations() {
        let mut t = tiny();
        t.insert(space(1, 0), Gva::new(0x1000), PageSize::Small4K, Hpa::new(0x1000));
        t.insert(space(1, 0), Gva::new(0x20_0000), PageSize::Large2M, Hpa::new(0x40_0000));
        t.insert(space(1, 1), Gva::new(0x2000), PageSize::Small4K, Hpa::new(0x2000));
        assert_eq!(t.flush_space(space(1, 0)), 2);
        assert_eq!(t.occupancy(), 1);
        assert!(t.contains(space(1, 1), Gva::new(0x2000), PageSize::Small4K));
        assert_eq!(t.stats().invalidations, 2);
        assert_eq!(t.flush_space(space(1, 0)), 0, "second flush finds nothing");
    }

    #[test]
    fn vm_id_xored_into_set_index() {
        // Same VPN, different VM -> usually different set; check that both
        // can coexist even in a direct-mapped config where same-set would
        // conflict.
        let mut t = SramTlb::new(TlbConfig::new(4, 1, 9));
        let va = Gva::new(0x1000);
        t.insert(space(0, 0), va, PageSize::Small4K, Hpa::new(0x1000));
        t.insert(space(1, 0), va, PageSize::Small4K, Hpa::new(0x2000));
        assert!(t.contains(space(0, 0), va, PageSize::Small4K));
        assert!(t.contains(space(1, 0), va, PageSize::Small4K));
    }

    #[test]
    fn hit_rate_math() {
        let mut t = tiny();
        let s = space(0, 0);
        t.insert(s, Gva::new(0), PageSize::Small4K, Hpa::new(0));
        t.lookup(s, Gva::new(0), PageSize::Small4K);
        t.lookup(s, Gva::new(0x10_0000), PageSize::Small4K);
        assert_eq!(t.stats().hit_rate(), 0.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_inserted_is_found(vpn in 0u64..1 << 30) {
            let mut t = tiny();
            let s = space(0, 0);
            let va = Gva::new(vpn << 12);
            t.insert(s, va, PageSize::Small4K, Hpa::new(0xaaaa_0000));
            prop_assert!(t.contains(s, va, PageSize::Small4K));
        }

        #[test]
        fn prop_occupancy_never_exceeds_entries(vpns in proptest::collection::vec(0u64..256, 1..100)) {
            let mut t = tiny();
            let s = space(0, 0);
            for vpn in vpns {
                t.insert(s, Gva::new(vpn << 12), PageSize::Small4K, Hpa::new(vpn << 12));
                prop_assert!(t.occupancy() <= 8);
            }
        }
    }
}
