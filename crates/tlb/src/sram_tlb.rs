//! A set-associative SRAM TLB with true-LRU replacement.

use pomtlb_types::{match_mask, AddressSpace, Gva, Hpa, PageSize, Vpn};
use serde::{Deserialize, Serialize};

use crate::config::TlbConfig;

/// The payload of a successful TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbLookup {
    /// Base host-physical address of the translated page.
    pub page_base: Hpa,
    /// The page size the entry maps.
    pub size: PageSize,
}

/// Hit/miss counters for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by inserts.
    pub evictions: u64,
    /// Entries removed by shootdowns/flushes.
    pub invalidations: u64,
}

impl TlbStats {
    /// Hit rate in [0,1]; zero with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SPACE0: AddressSpace =
    AddressSpace { vm: pomtlb_types::VmId(0), process: pomtlb_types::ProcessId(0) };

/// A set-associative, true-LRU SRAM TLB.
///
/// Entries are tagged with the full [`AddressSpace`] (VM ID + process ID),
/// so translations from multiple VMs coexist without flushes — the same
/// property the POM-TLB's entry format provides (Figure 5).
///
/// One instance maps one page size when used as an L1; the unified L2 holds
/// mixed sizes (the set index uses the entry's own size's VPN, so lookups
/// probe once per candidate size, as real unified TLBs do).
///
/// Entry metadata is structure-of-arrays: validity is one bit per way in a
/// per-set `u64`, and the tag components (space, VPN, size), payloads and
/// LRU stamps live in separate dense arrays. Every simulated memory
/// reference probes at least two of these TLBs (L1 then L2, twice per size
/// for the unified L2), so a probe that touches a few packed words instead
/// of `ways` scattered 40-byte structs is measurably cheaper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SramTlb {
    config: TlbConfig,
    sets: u32,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two (all shipped geometries),
    /// so the per-lookup set index is a mask instead of a `%`. Zero means
    /// "not a power of two, divide".
    set_mask: u64,
    /// All ways of one set as set bits: `(1 << ways) - 1`.
    full_mask: u64,
    /// Validity of set `s`'s ways, one bit per way.
    valid: Vec<u64>,
    /// Tag: owning address space, indexed `set * ways + way`.
    spaces: Vec<AddressSpace>,
    /// Tag: virtual page number, same indexing.
    vpns: Vec<u64>,
    /// Tag: the page size the entry maps, same indexing.
    sizes: Vec<PageSize>,
    /// Payload: host-physical page base, same indexing.
    page_bases: Vec<u64>,
    /// LRU stamps (larger = more recently used), same indexing.
    stamps: Vec<u64>,
    clock: u64,
    stats: TlbStats,
}

impl SramTlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`TlbConfig::sets`]) or
    /// associativity exceeds 64 (the per-set bitmask word).
    pub fn new(config: TlbConfig) -> SramTlb {
        let sets = config.sets();
        let ways = config.ways as usize;
        assert!((1..=64).contains(&ways), "associativity {ways} does not fit a bitmask word");
        let entries = (sets * config.ways) as usize;
        SramTlb {
            config,
            sets,
            ways,
            set_mask: if sets.is_power_of_two() { (sets - 1) as u64 } else { 0 },
            full_mask: if ways == 64 { u64::MAX } else { (1 << ways) - 1 },
            valid: vec![0; sets as usize],
            spaces: vec![SPACE0; entries],
            vpns: vec![0; entries],
            sizes: vec![PageSize::Small4K; entries],
            page_bases: vec![0; entries],
            stamps: vec![0; entries],
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    #[inline]
    fn set_of(&self, vpn: u64, space: AddressSpace) -> usize {
        // XOR the VM id in to spread VMs across sets, as Eq. (1) does for
        // the POM-TLB.
        let hash = vpn ^ space.vm.as_u64();
        let set = if self.set_mask != 0 { hash & self.set_mask } else { hash % self.sets as u64 };
        set as usize
    }

    /// The resident way holding `(space, vpn, size)` in `set`, if any.
    ///
    /// Probes the VPN lane of the whole set in one branch-free multi-lane
    /// compare (see [`pomtlb_types::match_mask`]), then confirms the space
    /// and size tags only on candidate ways. VPNs almost never collide
    /// within a set across spaces/sizes, so the confirmation loop usually
    /// inspects exactly one way — the compare replaces the per-live-way
    /// tag walk that dominated this probe.
    #[inline]
    fn find_way(&self, set: usize, space: AddressSpace, vpn: u64, size: PageSize) -> Option<usize> {
        let base = set * self.ways;
        let mut candidates =
            match_mask(&self.vpns[base..base + self.ways], vpn) & self.valid[set];
        while candidates != 0 {
            let w = candidates.trailing_zeros() as usize;
            let i = base + w;
            if self.spaces[i] == space && self.sizes[i] == size {
                return Some(w);
            }
            candidates &= candidates - 1;
        }
        None
    }

    /// Looks up the translation of `va` assuming page size `size`.
    ///
    /// A unified TLB caller probes once per size it may hold.
    pub fn lookup(&mut self, space: AddressSpace, va: Gva, size: PageSize) -> Option<TlbLookup> {
        self.clock += 1;
        let vpn = Vpn::of(va, size).0;
        let set = self.set_of(vpn, space);
        match self.find_way(set, space, vpn, size) {
            Some(w) => {
                self.stamps[set * self.ways + w] = self.clock;
                self.stats.hits += 1;
                Some(TlbLookup { page_base: Hpa::new(self.page_bases[set * self.ways + w]), size })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Probes without updating LRU or statistics.
    pub fn contains(&self, space: AddressSpace, va: Gva, size: PageSize) -> bool {
        let vpn = Vpn::of(va, size).0;
        let set = self.set_of(vpn, space);
        self.find_way(set, space, vpn, size).is_some()
    }

    /// Installs (or refreshes) a translation. Returns `true` if an existing
    /// valid entry was displaced.
    pub fn insert(&mut self, space: AddressSpace, va: Gva, size: PageSize, page_base: Hpa) -> bool {
        self.clock += 1;
        let vpn = Vpn::of(va, size).0;
        let set = self.set_of(vpn, space);
        let base = set * self.ways;
        // Refresh in place if already present.
        if let Some(w) = self.find_way(set, space, vpn, size) {
            self.page_bases[base + w] = page_base.raw();
            self.stamps[base + w] = self.clock;
            return false;
        }
        let free = !self.valid[set] & self.full_mask;
        let w = if free != 0 {
            free.trailing_zeros() as usize
        } else {
            let mut best = 0;
            for w in 1..self.ways {
                if self.stamps[base + w] < self.stamps[base + best] {
                    best = w;
                }
            }
            best
        };
        let displaced = self.valid[set] & (1 << w) != 0;
        self.valid[set] |= 1 << w;
        self.spaces[base + w] = space;
        self.vpns[base + w] = vpn;
        self.sizes[base + w] = size;
        self.page_bases[base + w] = page_base.raw();
        self.stamps[base + w] = self.clock;
        if displaced {
            self.stats.evictions += 1;
        }
        displaced
    }

    /// Shootdown of one page's translation. Returns whether it was present.
    pub fn invalidate_page(&mut self, space: AddressSpace, va: Gva, size: PageSize) -> bool {
        let vpn = Vpn::of(va, size).0;
        let set = self.set_of(vpn, space);
        match self.find_way(set, space, vpn, size) {
            Some(w) => {
                self.valid[set] &= !(1 << w);
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }

    /// Flushes every valid entry matching `pred` (called with each entry's
    /// space); returns the number dropped.
    fn flush_matching(&mut self, pred: impl Fn(AddressSpace) -> bool) -> u64 {
        let mut dropped = 0;
        for set in 0..self.sets as usize {
            let base = set * self.ways;
            let mut live = self.valid[set];
            while live != 0 {
                let w = live.trailing_zeros() as usize;
                if pred(self.spaces[base + w]) {
                    self.valid[set] &= !(1 << w);
                    dropped += 1;
                }
                live &= live - 1;
            }
        }
        self.stats.invalidations += dropped;
        dropped
    }

    /// Flushes every entry belonging to a VM (VM teardown). Returns the
    /// number of entries dropped.
    pub fn flush_vm(&mut self, vm: pomtlb_types::VmId) -> u64 {
        self.flush_matching(|s| s.vm == vm)
    }

    /// Flushes every entry belonging to one address space — a CR3 switch
    /// without PCID, a process teardown, or the process migrating off this
    /// core. Returns the number of entries dropped.
    pub fn flush_space(&mut self, space: AddressSpace) -> u64 {
        self.flush_matching(|s| s == space)
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> u64 {
        self.valid.iter().map(|v| v.count_ones() as u64).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets statistics without flushing entries.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomtlb_types::{ProcessId, VmId};
    use proptest::prelude::*;

    fn space(vm: u16, pid: u16) -> AddressSpace {
        AddressSpace::new(VmId(vm), ProcessId(pid))
    }

    fn tiny() -> SramTlb {
        SramTlb::new(TlbConfig::new(8, 2, 9)) // 4 sets x 2 ways
    }

    #[test]
    fn miss_then_hit_after_insert() {
        let mut t = tiny();
        let s = space(0, 0);
        let va = Gva::new(0x5000);
        assert!(t.lookup(s, va, PageSize::Small4K).is_none());
        t.insert(s, va, PageSize::Small4K, Hpa::new(0x9000));
        let hit = t.lookup(s, va, PageSize::Small4K).expect("must hit");
        assert_eq!(hit.page_base, Hpa::new(0x9000));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn same_page_different_space_misses() {
        let mut t = tiny();
        let va = Gva::new(0x5000);
        t.insert(space(1, 1), va, PageSize::Small4K, Hpa::new(0x9000));
        assert!(t.lookup(space(1, 2), va, PageSize::Small4K).is_none());
        assert!(t.lookup(space(2, 1), va, PageSize::Small4K).is_none());
        assert!(t.lookup(space(1, 1), va, PageSize::Small4K).is_some());
    }

    #[test]
    fn sizes_are_distinct_tags() {
        let mut t = tiny();
        let s = space(0, 0);
        let va = Gva::new(0x20_0000);
        t.insert(s, va, PageSize::Large2M, Hpa::new(0x4000_0000));
        assert!(t.lookup(s, va, PageSize::Small4K).is_none());
        assert!(t.lookup(s, va, PageSize::Large2M).is_some());
    }

    #[test]
    fn lru_within_set() {
        let mut t = tiny();
        let s = space(0, 0);
        // VPNs 0, 4, 8 all map to set 0 (4 sets).
        let a = Gva::new(0 << 12);
        let b = Gva::new(4 << 12);
        let c = Gva::new(8 << 12);
        t.insert(s, a, PageSize::Small4K, Hpa::new(0x1000));
        t.insert(s, b, PageSize::Small4K, Hpa::new(0x2000));
        t.lookup(s, a, PageSize::Small4K); // a becomes MRU
        t.insert(s, c, PageSize::Small4K, Hpa::new(0x3000)); // evicts b
        assert!(t.contains(s, a, PageSize::Small4K));
        assert!(!t.contains(s, b, PageSize::Small4K));
        assert!(t.contains(s, c, PageSize::Small4K));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn insert_refreshes_existing() {
        let mut t = tiny();
        let s = space(0, 0);
        let va = Gva::new(0x7000);
        t.insert(s, va, PageSize::Small4K, Hpa::new(0x1000));
        let displaced = t.insert(s, va, PageSize::Small4K, Hpa::new(0x2000));
        assert!(!displaced);
        assert_eq!(t.occupancy(), 1);
        assert_eq!(
            t.lookup(s, va, PageSize::Small4K).unwrap().page_base,
            Hpa::new(0x2000)
        );
    }

    #[test]
    fn invalidate_page_removes_entry() {
        let mut t = tiny();
        let s = space(0, 0);
        let va = Gva::new(0x7000);
        t.insert(s, va, PageSize::Small4K, Hpa::new(0x1000));
        assert!(t.invalidate_page(s, va, PageSize::Small4K));
        assert!(!t.contains(s, va, PageSize::Small4K));
        assert!(!t.invalidate_page(s, va, PageSize::Small4K));
        assert_eq!(t.stats().invalidations, 1);
    }

    #[test]
    fn flush_vm_spares_other_vms() {
        let mut t = tiny();
        t.insert(space(1, 0), Gva::new(0x1000), PageSize::Small4K, Hpa::new(0x1000));
        t.insert(space(1, 1), Gva::new(0x2000), PageSize::Small4K, Hpa::new(0x2000));
        t.insert(space(2, 0), Gva::new(0x3000), PageSize::Small4K, Hpa::new(0x3000));
        assert_eq!(t.flush_vm(VmId(1)), 2);
        assert_eq!(t.occupancy(), 1);
        assert!(t.contains(space(2, 0), Gva::new(0x3000), PageSize::Small4K));
    }

    #[test]
    fn flush_space_spares_other_processes_and_counts_invalidations() {
        let mut t = tiny();
        t.insert(space(1, 0), Gva::new(0x1000), PageSize::Small4K, Hpa::new(0x1000));
        t.insert(space(1, 0), Gva::new(0x20_0000), PageSize::Large2M, Hpa::new(0x40_0000));
        t.insert(space(1, 1), Gva::new(0x2000), PageSize::Small4K, Hpa::new(0x2000));
        assert_eq!(t.flush_space(space(1, 0)), 2);
        assert_eq!(t.occupancy(), 1);
        assert!(t.contains(space(1, 1), Gva::new(0x2000), PageSize::Small4K));
        assert_eq!(t.stats().invalidations, 2);
        assert_eq!(t.flush_space(space(1, 0)), 0, "second flush finds nothing");
    }

    #[test]
    fn vm_id_xored_into_set_index() {
        // Same VPN, different VM -> usually different set; check that both
        // can coexist even in a direct-mapped config where same-set would
        // conflict.
        let mut t = SramTlb::new(TlbConfig::new(4, 1, 9));
        let va = Gva::new(0x1000);
        t.insert(space(0, 0), va, PageSize::Small4K, Hpa::new(0x1000));
        t.insert(space(1, 0), va, PageSize::Small4K, Hpa::new(0x2000));
        assert!(t.contains(space(0, 0), va, PageSize::Small4K));
        assert!(t.contains(space(1, 0), va, PageSize::Small4K));
    }

    #[test]
    fn hit_rate_math() {
        let mut t = tiny();
        let s = space(0, 0);
        t.insert(s, Gva::new(0), PageSize::Small4K, Hpa::new(0));
        t.lookup(s, Gva::new(0), PageSize::Small4K);
        t.lookup(s, Gva::new(0x10_0000), PageSize::Small4K);
        assert_eq!(t.stats().hit_rate(), 0.5);
    }

    #[test]
    fn reinsert_after_invalidate_reuses_the_freed_way() {
        // The freed way must be treated as invalid (picked before any LRU
        // eviction) — a regression guard on the bitmask bookkeeping.
        let mut t = tiny();
        let s = space(0, 0);
        let a = Gva::new(0 << 12);
        let b = Gva::new(4 << 12);
        t.insert(s, a, PageSize::Small4K, Hpa::new(0x1000));
        t.insert(s, b, PageSize::Small4K, Hpa::new(0x2000));
        t.invalidate_page(s, a, PageSize::Small4K);
        t.insert(s, Gva::new(8 << 12), PageSize::Small4K, Hpa::new(0x3000));
        assert_eq!(t.stats().evictions, 0, "freed way absorbs the insert");
        assert!(t.contains(s, b, PageSize::Small4K));
    }

    // Reference-model cross-check: a naive array-of-structs TLB with the
    // same LRU/insert/invalidate policy, probed entry by entry with plain
    // field compares. The SoA + multi-lane `match_mask` fast path must
    // agree with it step for step — this is the guard on the SIMD probe.
    #[derive(Clone, Copy)]
    struct RefEntry {
        valid: bool,
        space: AddressSpace,
        vpn: u64,
        size: PageSize,
        page_base: u64,
        stamp: u64,
    }

    struct RefTlb {
        sets: u64,
        ways: usize,
        entries: Vec<RefEntry>,
        clock: u64,
    }

    impl RefTlb {
        fn new(sets: u64, ways: usize) -> RefTlb {
            let e = RefEntry {
                valid: false,
                space: space(0, 0),
                vpn: 0,
                size: PageSize::Small4K,
                page_base: 0,
                stamp: 0,
            };
            RefTlb { sets, ways, entries: vec![e; sets as usize * ways], clock: 0 }
        }

        fn set_of(&self, vpn: u64, s: AddressSpace) -> usize {
            ((vpn ^ s.vm.as_u64()) % self.sets) as usize
        }

        fn find(&self, s: AddressSpace, vpn: u64, size: PageSize) -> Option<usize> {
            let base = self.set_of(vpn, s) * self.ways;
            (0..self.ways).find(|&w| {
                let e = &self.entries[base + w];
                e.valid && e.space == s && e.vpn == vpn && e.size == size
            })
        }

        fn lookup(&mut self, s: AddressSpace, va: Gva, size: PageSize) -> Option<u64> {
            self.clock += 1;
            let vpn = Vpn::of(va, size).0;
            let base = self.set_of(vpn, s) * self.ways;
            let w = self.find(s, vpn, size)?;
            self.entries[base + w].stamp = self.clock;
            Some(self.entries[base + w].page_base)
        }

        fn insert(&mut self, s: AddressSpace, va: Gva, size: PageSize, page_base: Hpa) {
            self.clock += 1;
            let vpn = Vpn::of(va, size).0;
            let base = self.set_of(vpn, s) * self.ways;
            if let Some(w) = self.find(s, vpn, size) {
                self.entries[base + w].page_base = page_base.raw();
                self.entries[base + w].stamp = self.clock;
                return;
            }
            let w = (0..self.ways)
                .find(|&w| !self.entries[base + w].valid)
                .unwrap_or_else(|| {
                    (0..self.ways)
                        .min_by_key(|&w| self.entries[base + w].stamp)
                        .unwrap()
                });
            self.entries[base + w] = RefEntry {
                valid: true,
                space: s,
                vpn,
                size,
                page_base: page_base.raw(),
                stamp: self.clock,
            };
        }

        fn invalidate(&mut self, s: AddressSpace, va: Gva, size: PageSize) -> bool {
            let vpn = Vpn::of(va, size).0;
            let base = self.set_of(vpn, s) * self.ways;
            match self.find(s, vpn, size) {
                Some(w) => {
                    self.entries[base + w].valid = false;
                    true
                }
                None => false,
            }
        }
    }

    #[test]
    fn soa_simd_probe_matches_aos_reference() {
        // 4 sets x 2 ways, driven by a deterministic op mix dense enough to
        // force evictions, refreshes, invalidations and cross-space and
        // cross-size aliasing within sets.
        let mut fast = tiny();
        let mut slow = RefTlb::new(4, 2);
        let mut state = 0x2a2a_2a2au64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..4000 {
            let s = space((next() % 3) as u16, (next() % 2) as u16);
            let size = if next() % 4 == 0 { PageSize::Large2M } else { PageSize::Small4K };
            let va = Gva::new((next() % 24) * size.bytes());
            match next() % 4 {
                0 => {
                    let pb = Hpa::new(((next() % 1024) + 1) * size.bytes());
                    fast.insert(s, va, size, pb);
                    slow.insert(s, va, size, pb);
                }
                1 => assert_eq!(
                    fast.invalidate_page(s, va, size),
                    slow.invalidate(s, va, size),
                    "invalidate({s:?}, {va}, {size})"
                ),
                _ => assert_eq!(
                    fast.lookup(s, va, size).map(|l| l.page_base.raw()),
                    slow.lookup(s, va, size),
                    "lookup({s:?}, {va}, {size})"
                ),
            }
        }
        let resident = slow.entries.iter().filter(|e| e.valid).count() as u64;
        assert_eq!(fast.occupancy(), resident);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_inserted_is_found(vpn in 0u64..1 << 30) {
            let mut t = tiny();
            let s = space(0, 0);
            let va = Gva::new(vpn << 12);
            t.insert(s, va, PageSize::Small4K, Hpa::new(0xaaaa_0000));
            prop_assert!(t.contains(s, va, PageSize::Small4K));
        }

        #[test]
        fn prop_occupancy_never_exceeds_entries(vpns in proptest::collection::vec(0u64..256, 1..100)) {
            let mut t = tiny();
            let s = space(0, 0);
            for vpn in vpns {
                t.insert(s, Gva::new(vpn << 12), PageSize::Small4K, Hpa::new(vpn << 12));
                prop_assert!(t.occupancy() <= 8);
            }
        }
    }
}
